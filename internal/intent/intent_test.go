package intent

import (
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"lucidscript/internal/frame"
)

func mustCSV(t *testing.T, s string) *frame.Frame {
	t.Helper()
	f, err := frame.ReadCSVString(s)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestTableJaccardIdentical(t *testing.T) {
	f := mustCSV(t, "a,b\n1,2\n3,4\n")
	j, err := TableJaccard(f, f.Clone())
	if err != nil || j != 1 {
		t.Fatalf("jaccard = %v err=%v", j, err)
	}
}

func TestTableJaccardPaperExample(t *testing.T) {
	// Example 2.1: 5 distinct rows vs 2 kept rows → 2/5.
	a := mustCSV(t, "label\nbenign\nBenign\nHigh Risk\nHigh risk\nhigh risk\n")
	b := mustCSV(t, "label\nbenign\nhigh risk\n")
	j, err := TableJaccard(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(j-0.4) > 1e-9 {
		t.Fatalf("jaccard = %v, want 0.4", j)
	}
}

func TestTableJaccardDisjoint(t *testing.T) {
	a := mustCSV(t, "a\n1\n2\n")
	b := mustCSV(t, "a\n3\n4\n")
	j, _ := TableJaccard(a, b)
	if j != 0 {
		t.Fatalf("jaccard = %v", j)
	}
}

func TestTableJaccardValueSetSemantics(t *testing.T) {
	// Duplicated rows do not change the value set (Example 2.1 semantics).
	a := mustCSV(t, "a\n1\n1\n1\n")
	b := mustCSV(t, "a\n1\n")
	j, _ := TableJaccard(a, b)
	if j != 1 {
		t.Fatalf("value-set jaccard = %v, want 1", j)
	}
	// Adding a 0/1 dummy column where 0 and 1 already occur barely moves it.
	c := mustCSV(t, "a,b\n0,1\n1,0\n")
	d := mustCSV(t, "a,b,dummy\n0,1,1\n1,0,0\n")
	j2, _ := TableJaccard(c, d)
	if j2 != 1 {
		t.Fatalf("dummy column jaccard = %v, want 1", j2)
	}
}

func TestRowJaccardMultiset(t *testing.T) {
	a := mustCSV(t, "a\n1\n1\n1\n")
	b := mustCSV(t, "a\n1\n")
	j, _ := RowJaccard(a, b)
	if math.Abs(j-1.0/3) > 1e-9 {
		t.Fatalf("row jaccard = %v, want 1/3", j)
	}
	if _, err := RowJaccard(nil, b); err == nil {
		t.Fatal("nil frame should error")
	}
	c := mustCSV(t, "a,b\n1,2\n")
	d := mustCSV(t, "b,a\n2,1\n")
	if j2, _ := RowJaccard(c, d); j2 != 1 {
		t.Fatalf("row jaccard column order = %v", j2)
	}
}

func TestTableJaccardColumnOrderInsensitive(t *testing.T) {
	a := mustCSV(t, "a,b\n1,2\n")
	b := mustCSV(t, "b,a\n2,1\n")
	j, _ := TableJaccard(a, b)
	if j != 1 {
		t.Fatalf("jaccard = %v", j)
	}
}

func TestTableJaccardNil(t *testing.T) {
	f := mustCSV(t, "a\n1\n")
	if _, err := TableJaccard(nil, f); err == nil {
		t.Fatal("nil frame should error")
	}
	if _, err := TableJaccard(f, nil); err == nil {
		t.Fatal("nil frame should error")
	}
}

func TestTableJaccardBothEmpty(t *testing.T) {
	a := mustCSV(t, "a\n1\n").Head(0)
	b := mustCSV(t, "a\n1\n").Head(0)
	j, err := TableJaccard(a, b)
	if err != nil || j != 1 {
		t.Fatalf("empty jaccard = %v", j)
	}
}

// synthFrame builds a labeled dataset where feat1 predicts the label.
func synthFrame(t *testing.T, n int, seed int64) *frame.Frame {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	b.WriteString("feat1,feat2,Outcome\n")
	for i := 0; i < n; i++ {
		a := rng.NormFloat64()
		c := rng.NormFloat64()
		label := 0
		if a > 0 {
			label = 1
		}
		b.WriteString(strconv.FormatFloat(a, 'f', 4, 64))
		b.WriteByte(',')
		b.WriteString(strconv.FormatFloat(c, 'f', 4, 64))
		b.WriteByte(',')
		b.WriteString(strconv.Itoa(label))
		b.WriteByte('\n')
	}
	return mustCSV(t, b.String())
}

func TestModelAccuracyOnPredictiveData(t *testing.T) {
	f := synthFrame(t, 400, 5)
	acc, err := ModelAccuracy(f, ModelConfig{Target: "Outcome"})
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.85 {
		t.Fatalf("accuracy = %v", acc)
	}
}

func TestModelAccuracyMissingTarget(t *testing.T) {
	f := synthFrame(t, 50, 5)
	if _, err := ModelAccuracy(f, ModelConfig{Target: "Nope"}); err == nil {
		t.Fatal("missing target should error")
	}
}

func TestModelDeltaIdenticalZero(t *testing.T) {
	f := synthFrame(t, 300, 6)
	d, err := ModelDelta(f, f.Clone(), ModelConfig{Target: "Outcome"})
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("delta = %v, want 0", d)
	}
}

func TestModelDeltaDetectsDegradation(t *testing.T) {
	f := synthFrame(t, 400, 7)
	// Destroy the predictive feature. DeepClone: we mutate the column in
	// place, which plain Clone now shares.
	broken := f.DeepClone()
	feat, _ := broken.Column("feat1")
	for i := 0; i < feat.Len(); i++ {
		feat.SetFloat(i, 0)
	}
	d, err := ModelDelta(f, broken, ModelConfig{Target: "Outcome"})
	if err != nil {
		t.Fatal(err)
	}
	if d < 10 {
		t.Fatalf("delta = %v, want large degradation", d)
	}
}

func TestBinarizeStringTarget(t *testing.T) {
	f := mustCSV(t, "feat,label\n1,yes\n2,yes\n3,no\n4,no\n5,yes\n6,no\n7,yes\n8,no\n9,yes\n10,no\n")
	acc, err := ModelAccuracy(f, ModelConfig{Target: "label"})
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy = %v", acc)
	}
}

func TestBinarizeNonBinaryNumeric(t *testing.T) {
	f := mustCSV(t, "feat,price\n1,100\n2,200\n3,300\n4,400\n5,500\n6,600\n7,700\n8,800\n9,900\n10,1000\n")
	acc, err := ModelAccuracy(f, ModelConfig{Target: "price"})
	if err != nil {
		t.Fatal(err)
	}
	// Mean-threshold binarization over a monotone feature is learnable.
	if acc < 0.5 {
		t.Fatalf("accuracy = %v", acc)
	}
}

func TestConstraintJaccard(t *testing.T) {
	a := mustCSV(t, "a\n1\n2\n3\n4\n5\n")
	b := mustCSV(t, "a\n1\n2\n3\n4\n")
	c := Constraint{Measure: MeasureJaccard, Tau: 0.9}
	ok, val, err := c.Satisfied(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("4/5 = %v should violate τ=0.9", val)
	}
	c.Tau = 0.7
	ok, _, _ = c.Satisfied(a, b)
	if !ok {
		t.Fatal("4/5 should satisfy τ=0.7")
	}
}

func TestConstraintModel(t *testing.T) {
	f := synthFrame(t, 300, 8)
	c := Constraint{Measure: MeasureModel, Tau: 1, Model: ModelConfig{Target: "Outcome"}}
	ok, val, err := c.Satisfied(f, f.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if !ok || val != 0 {
		t.Fatalf("identical outputs should satisfy: ok=%v val=%v", ok, val)
	}
}

func TestConstraintUnknownMeasure(t *testing.T) {
	c := Constraint{Measure: Measure(99)}
	if _, _, err := c.Satisfied(nil, nil); err == nil {
		t.Fatal("unknown measure should error")
	}
}

func TestMeasureString(t *testing.T) {
	if MeasureJaccard.String() != "table-jaccard" || MeasureModel.String() != "model-performance" {
		t.Fatal("measure names")
	}
}

// Property: Jaccard is symmetric and within [0,1].
func TestJaccardSymmetryProperty(t *testing.T) {
	gen := func(vals []uint8) *frame.Frame {
		var b strings.Builder
		b.WriteString("a\n")
		for _, v := range vals {
			b.WriteString(strconv.Itoa(int(v % 8)))
			b.WriteByte('\n')
		}
		f, _ := frame.ReadCSVString(b.String())
		return f
	}
	f := func(x, y []uint8) bool {
		if len(x) == 0 || len(y) == 0 {
			return true
		}
		a, b := gen(x), gen(y)
		j1, err1 := TableJaccard(a, b)
		j2, err2 := TableJaccard(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(j1-j2) < 1e-12 && j1 >= 0 && j1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
