package intent

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"lucidscript/internal/frame"
)

// biasedFrame builds a dataset where the feature (and thus the model's
// predictions) correlates with group membership when biased is true.
func biasedFrame(t *testing.T, n int, biased bool, seed int64) *frame.Frame {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	b.WriteString("score,group,Outcome\n")
	for i := 0; i < n; i++ {
		g := "a"
		if rng.Float64() < 0.5 {
			g = "b"
		}
		score := rng.NormFloat64()
		if biased && g == "b" {
			score += 2 // group b systematically scores higher
		}
		label := 0
		if score > 0.5 {
			label = 1
		}
		b.WriteString(strconv.FormatFloat(score, 'f', 3, 64) + "," + g + "," + strconv.Itoa(label) + "\n")
	}
	f, err := frame.ReadCSVString(b.String())
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestDemographicParityDetectsBias(t *testing.T) {
	fair := biasedFrame(t, 400, false, 1)
	biased := biasedFrame(t, 400, true, 1)
	dpFair, err := DemographicParity(fair, ModelConfig{Target: "Outcome"}, "group")
	if err != nil {
		t.Fatal(err)
	}
	dpBiased, err := DemographicParity(biased, ModelConfig{Target: "Outcome"}, "group")
	if err != nil {
		t.Fatal(err)
	}
	if dpBiased < dpFair+0.2 {
		t.Fatalf("biased DP (%v) should clearly exceed fair DP (%v)", dpBiased, dpFair)
	}
	if dpFair < 0 || dpFair > 1 || dpBiased < 0 || dpBiased > 1 {
		t.Fatalf("DP out of range: %v %v", dpFair, dpBiased)
	}
}

func TestDemographicParityErrors(t *testing.T) {
	f := biasedFrame(t, 50, false, 2)
	if _, err := DemographicParity(nil, ModelConfig{Target: "Outcome"}, "group"); err == nil {
		t.Fatal("nil frame should error")
	}
	if _, err := DemographicParity(f, ModelConfig{Target: "Nope"}, "group"); err == nil {
		t.Fatal("missing target should error")
	}
	if _, err := DemographicParity(f, ModelConfig{Target: "Outcome"}, "Nope"); err == nil {
		t.Fatal("missing protected column should error")
	}
}

func TestDemographicParitySingleGroup(t *testing.T) {
	f := mustCSV(t, "score,group,Outcome\n1,a,1\n2,a,0\n3,a,1\n4,a,0\n")
	dp, err := DemographicParity(f, ModelConfig{Target: "Outcome"}, "group")
	if err != nil || dp != 0 {
		t.Fatalf("single-group DP = %v err=%v", dp, err)
	}
}

func TestFairnessDeltaAndConstraint(t *testing.T) {
	f := biasedFrame(t, 300, true, 3)
	d, err := FairnessDelta(f, f.Clone(), ModelConfig{Target: "Outcome"}, "group")
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("identical outputs should have zero fairness delta, got %v", d)
	}
	c := Constraint{
		Measure: MeasureFairness,
		Tau:     0.05,
		Model:   ModelConfig{Target: "Outcome", Protected: "group"},
	}
	ok, val, err := c.Satisfied(f, f.Clone())
	if err != nil || !ok || val != 0 {
		t.Fatalf("identity should satisfy fairness: ok=%v val=%v err=%v", ok, val, err)
	}
	// Destroying the predictive feature changes the parity gap. DeepClone:
	// we mutate the column in place, which plain Clone now shares.
	broken := f.DeepClone()
	score, _ := broken.Column("score")
	for i := 0; i < score.Len(); i++ {
		score.SetFloat(i, 0)
	}
	ok2, val2, err := c.Satisfied(f, broken)
	if err != nil {
		t.Fatal(err)
	}
	if ok2 || val2 < 0.05 {
		t.Fatalf("feature destruction should violate the fairness constraint: ok=%v val=%v", ok2, val2)
	}
}

func TestMeasureFairnessName(t *testing.T) {
	if MeasureFairness.String() != "fairness" {
		t.Fatal("measure name")
	}
}
