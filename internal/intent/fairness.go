package intent

import (
	"fmt"
	"math"

	"lucidscript/internal/frame"
	"lucidscript/internal/ml"
)

// DemographicParity measures the downstream model's demographic-parity gap
// on the prepared dataset: |P(ŷ=1 | A=g₀) − P(ŷ=1 | A=g₁)| where A is the
// protected column (its most frequent value forms group g₀, everything else
// g₁) and predictions come from cross-validated models trained without the
// protected column. The result is in [0, 1]; 0 means the model treats the
// groups identically. This supports the fairness-aware intent constraint
// the paper's Section 8 proposes (citing "Automated data cleaning can hurt
// fairness in ML-based decision making").
func DemographicParity(out *frame.Frame, cfg ModelConfig, protected string) (float64, error) {
	if out == nil {
		return 0, ErrNoOutput
	}
	cfg.defaults()
	target, err := out.Column(cfg.Target)
	if err != nil {
		return 0, fmt.Errorf("intent: target column: %w", err)
	}
	prot, err := out.Column(protected)
	if err != nil {
		return 0, fmt.Errorf("intent: protected column: %w", err)
	}
	x, _ := out.NumericMatrix(cfg.Target, protected)
	y, err := binarize(target)
	if err != nil {
		return 0, err
	}
	ds, err := ml.NewDataset(x, y)
	if err != nil {
		return 0, err
	}
	fit := func(train *ml.Dataset) (ml.Classifier, error) {
		if train.NumFeatures() == 0 {
			return ml.TrainMajority(train), nil
		}
		return ml.TrainLogistic(train, ml.LogisticConfig{Epochs: cfg.Epochs})
	}
	preds, err := ml.CrossValPredictions(ds, 4, fit)
	if err != nil {
		return 0, err
	}
	mode, ok := prot.Mode()
	if !ok {
		return 0, fmt.Errorf("intent: protected column %q is all null", protected)
	}
	var pos0, n0, pos1, n1 float64
	for i := 0; i < prot.Len(); i++ {
		if !prot.IsValid(i) {
			continue
		}
		if prot.StringAt(i) == mode {
			n0++
			pos0 += float64(preds[i])
		} else {
			n1++
			pos1 += float64(preds[i])
		}
	}
	if n0 == 0 || n1 == 0 {
		// A single group has no parity gap by definition.
		return 0, nil
	}
	return math.Abs(pos0/n0 - pos1/n1), nil
}

// FairnessDelta returns the absolute change in the demographic-parity gap
// between the original and modified outputs: a preparation change that makes
// the downstream model substantially less (or more) fair violates a
// fairness intent constraint.
func FairnessDelta(origOut, newOut *frame.Frame, cfg ModelConfig, protected string) (float64, error) {
	a, err := DemographicParity(origOut, cfg, protected)
	if err != nil {
		return 0, err
	}
	b, err := DemographicParity(newOut, cfg, protected)
	if err != nil {
		return 0, err
	}
	return math.Abs(a - b), nil
}
