package entropy

import (
	"math"
	"testing"
	"testing/quick"

	"lucidscript/internal/dag"
	"lucidscript/internal/script"
)

func corpusGraphs(t *testing.T, srcs ...string) []*dag.Graph {
	t.Helper()
	var gs []*dag.Graph
	for _, s := range srcs {
		gs = append(gs, dag.Build(script.MustParse(s)))
	}
	return gs
}

const (
	s1 = "import pandas as pd\ndf = pd.read_csv(\"d.csv\")\ndf = df.fillna(df.mean())\ndf = df[df[\"SkinThickness\"] < 80]\ndf = pd.get_dummies(df)\n"
	s2 = "import pandas as pd\ndf = pd.read_csv(\"d.csv\")\ndf = df[df[\"SkinThickness\"] < 80]\ndf = pd.get_dummies(df)\n"
	s3 = "import pandas as pd\ndf = pd.read_csv(\"d.csv\")\ndf = df.fillna(df.mean())\ndf = pd.get_dummies(df)\n"
)

func TestBuildVocabCounts(t *testing.T) {
	gs := corpusGraphs(t, s1, s2, s3)
	v := BuildVocab(gs)
	if v.NumScripts != 3 {
		t.Fatalf("scripts = %d", v.NumScripts)
	}
	if v.LineCounts["import pandas as pd"] != 3 {
		t.Fatalf("import count = %d", v.LineCounts["import pandas as pd"])
	}
	if v.LineCounts["df = df.fillna(df.mean())"] != 2 {
		t.Fatalf("fillna count = %d", v.LineCounts["df = df.fillna(df.mean())"])
	}
	if v.TotalEdges == 0 || v.NumUniqueEdges() == 0 || v.NumUniqueLines() == 0 || v.NumUniqueUnigrams() == 0 {
		t.Fatal("empty vocab")
	}
	// read_csv→fillna edge appears in s1 and s3.
	key := dag.Edge{From: `df = pd.read_csv("d.csv")`, To: "df = df.fillna(df.mean())"}.Key()
	if v.EdgeCounts[key] != 2 {
		t.Fatalf("edge count = %d", v.EdgeCounts[key])
	}
}

func TestMeanPosRange(t *testing.T) {
	v := BuildVocab(corpusGraphs(t, s1, s2, s3))
	for k, p := range v.MeanPos {
		if p < 0 || p > 1 {
			t.Fatalf("MeanPos[%q] = %v", k, p)
		}
	}
	// import is always first.
	if v.MeanPos["import pandas as pd"] != 0 {
		t.Fatalf("import pos = %v", v.MeanPos["import pandas as pd"])
	}
}

func TestRENonNegativeAndOrdering(t *testing.T) {
	v := BuildVocab(corpusGraphs(t, s1, s2, s3))
	// A script matching common corpus steps should score lower (more
	// standard) than one using a rare composition.
	common := dag.Build(script.MustParse(s1))
	rare := dag.Build(script.MustParse(
		"import pandas as pd\ndf = pd.read_csv(\"d.csv\")\ndf = df.fillna(df.median())\n"))
	reCommon, reRare := v.RE(common), v.RE(rare)
	if reCommon < 0 || reRare < 0 {
		t.Fatalf("negative RE: %v %v", reCommon, reRare)
	}
	if reCommon >= reRare {
		t.Fatalf("common script should be more standard: common=%v rare=%v", reCommon, reRare)
	}
}

func TestREFiniteOnUnseenEdges(t *testing.T) {
	v := BuildVocab(corpusGraphs(t, s1))
	g := dag.Build(script.MustParse("import pandas as pd\ndf = pd.read_csv(\"other.csv\")\ndf = df.dropna()\n"))
	re := v.RE(g)
	if math.IsInf(re, 0) || math.IsNaN(re) {
		t.Fatalf("RE not finite on unseen edges: %v", re)
	}
	if re <= 0 {
		t.Fatalf("fully-unseen script should have positive RE, got %v", re)
	}
}

func TestREEmptyScript(t *testing.T) {
	v := BuildVocab(corpusGraphs(t, s1, s2))
	re := v.REFromEdges(nil)
	if math.IsNaN(re) || math.IsInf(re, 0) {
		t.Fatalf("empty-script RE = %v", re)
	}
	empty := BuildVocab(nil)
	if got := empty.REFromEdges(nil); got != 0 {
		t.Fatalf("empty/empty RE = %v", got)
	}
}

func TestAddingCommonStepLowersRE(t *testing.T) {
	// Mirror of Example 4.6: adding the common step moves P toward Q.
	v := BuildVocab(corpusGraphs(t, s1, s1, s3))
	before := dag.Build(script.MustParse(s2)) // missing fillna
	after := dag.Build(script.MustParse(s1))  // has fillna
	if v.RE(after) >= v.RE(before) {
		t.Fatalf("adding the corpus-common step should lower RE: before=%v after=%v",
			v.RE(before), v.RE(after))
	}
}

func TestRELinesMatchesRE(t *testing.T) {
	v := BuildVocab(corpusGraphs(t, s1, s2, s3))
	g := dag.Build(script.MustParse(s2))
	if math.Abs(v.RE(g)-v.RELines(g.Lines)) > 1e-12 {
		t.Fatal("RELines must agree with RE")
	}
}

func TestImprovement(t *testing.T) {
	if got := Improvement(2, 1); math.Abs(got-50) > 1e-9 {
		t.Fatalf("improvement = %v", got)
	}
	if got := Improvement(0, 1); got != 0 {
		t.Fatalf("zero-orig improvement = %v", got)
	}
	if got := Improvement(1, 2); got >= 0 {
		t.Fatalf("worsening should be negative, got %v", got)
	}
}

func TestSortedLineKeysDeterministic(t *testing.T) {
	v := BuildVocab(corpusGraphs(t, s1, s2, s3))
	a := v.SortedLineKeys()
	b := v.SortedLineKeys()
	if len(a) == 0 {
		t.Fatal("no keys")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic ordering")
		}
	}
	// Most frequent first.
	if v.LineCounts[a[0]] < v.LineCounts[a[len(a)-1]] {
		t.Fatal("keys not sorted by count")
	}
}

// Property: RE is non-negative for arbitrary scripts vs this corpus.
func TestRENonNegativeProperty(t *testing.T) {
	v := BuildVocab(corpusGraphs(t, s1, s2, s3))
	pool := []string{
		"import pandas as pd",
		`df = pd.read_csv("d.csv")`,
		"df = df.fillna(df.mean())",
		"df = df.dropna()",
		`df = df[df["SkinThickness"] < 80]`,
		"df = pd.get_dummies(df)",
		`df["Z"] = df["Z"].fillna(0)`,
	}
	f := func(pick []uint8) bool {
		var lines []dag.LineInfo
		for _, p := range pick {
			st, err := script.ParseStmt(pool[int(p)%len(pool)])
			if err != nil {
				return false
			}
			lines = append(lines, dag.NewLineInfo(st))
		}
		re := v.RELines(lines)
		return re >= -1e-9 && !math.IsNaN(re) && !math.IsInf(re, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
