package entropy

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"lucidscript/internal/dag"
	"lucidscript/internal/script"
)

func TestVocabEncodeDecodeRoundTrip(t *testing.T) {
	v := BuildVocab(corpusGraphs(t, s1, s2, s3))
	var buf bytes.Buffer
	if err := v.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	v2, err := DecodeVocab(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if v2.NumScripts != v.NumScripts || v2.TotalEdges != v.TotalEdges {
		t.Fatalf("totals differ: %+v vs %+v", v2, v)
	}
	if len(v2.EdgeCounts) != len(v.EdgeCounts) || len(v2.Lines) != len(v.Lines) {
		t.Fatal("vocabulary sizes differ")
	}
	// RE computed against the decoded vocabulary matches exactly.
	g := dag.Build(script.MustParse(s2))
	if math.Abs(v.RE(g)-v2.RE(g)) > 1e-12 {
		t.Fatalf("RE differs: %v vs %v", v.RE(g), v2.RE(g))
	}
	// Stored atoms are directly insertable (they carry parsed statements).
	for key, li := range v2.Lines {
		if li.Stmt == nil || li.Key != key {
			t.Fatalf("decoded atom broken: %q", key)
		}
	}
	// MeanPos preserved.
	for k, p := range v.MeanPos {
		if math.Abs(v2.MeanPos[k]-p) > 1e-12 {
			t.Fatalf("MeanPos[%q] differs", k)
		}
	}
}

func TestDecodeVocabErrors(t *testing.T) {
	if _, err := DecodeVocab(strings.NewReader("{broken")); err == nil {
		t.Fatal("broken JSON should error")
	}
	if _, err := DecodeVocab(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Fatal("unknown version should error")
	}
	if _, err := DecodeVocab(strings.NewReader(`{"version": 1, "lines": {"x": "df = ???"}}`)); err == nil {
		t.Fatal("unparseable stored atom should error")
	}
	if _, err := DecodeVocab(strings.NewReader(`{"version": 1, "lines": {"x": "df = df.dropna()"}}`)); err == nil {
		t.Fatal("key mismatch should error")
	}
}

func TestDecodeVocabEmptyMaps(t *testing.T) {
	v, err := DecodeVocab(strings.NewReader(`{"version": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	if v.EdgeCounts == nil || v.LineCounts == nil || v.UnigramCounts == nil || v.MeanPos == nil {
		t.Fatal("decoded maps must be non-nil")
	}
	if got := v.REFromEdges([]string{"a -> b"}); math.IsNaN(got) {
		t.Fatal("empty vocab should still score")
	}
}
