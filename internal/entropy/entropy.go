// Package entropy implements the paper's standardization measure: the
// relative entropy (KL divergence) between a script's data-preparation-step
// distribution P(x) and the corpus distribution Q(x), both defined over the
// data-flow edge vocabulary of the DAG representation (Definition 4.1).
//
// The paper's RE is infinite when the script contains an edge with Q(x)=0;
// we apply additive ε-smoothing over the union sample space so RE stays
// finite while preserving the paper's orderings (see DESIGN.md).
package entropy

import (
	"math"
	"sort"

	"lucidscript/internal/dag"
)

// Epsilon is the additive smoothing pseudo-count applied to Q(x).
const Epsilon = 0.5

// Vocab holds the search-space statistics curated offline from a corpus
// (Section 5.1): atom and edge vocabularies with counts, plus the relative
// position of each line atom inside its source scripts (used to place add
// transformations).
type Vocab struct {
	// EdgeCounts maps edge keys to occurrence counts across the corpus.
	EdgeCounts map[string]int
	// TotalEdges is the sum over EdgeCounts.
	TotalEdges int
	// LineCounts maps line-atom keys to occurrence counts.
	LineCounts map[string]int
	// UnigramCounts maps 1-gram atom keys to occurrence counts.
	UnigramCounts map[string]int
	// Lines maps a line-atom key to a representative LineInfo, usable as an
	// insertable statement (all corpus scripts are lemmatized, so the atom is
	// directly transplantable).
	Lines map[string]dag.LineInfo
	// MeanPos maps a line-atom key to its mean relative position in [0,1]
	// across the corpus scripts that contain it.
	MeanPos map[string]float64
	// NumScripts is the corpus size.
	NumScripts int
}

// BuildVocab curates the search space from corpus DAGs with every script
// weighted equally.
func BuildVocab(graphs []*dag.Graph) *Vocab {
	return BuildVocabWeighted(graphs, nil)
}

// ScriptStats is the per-script contribution to the corpus distributions:
// the script's atom-key sequences plus its corpus weight. It is everything
// the vocabulary fold needs, decoupled from the DAG it came from, so a
// persistent registry can cache one ScriptStats per corpus member and
// re-fold after membership changes without re-lemmatizing anything.
type ScriptStats struct {
	// Weight is the script's corpus weight; non-positive folds as 1.
	Weight int
	// LineKeys are the script's line-atom keys in statement order (the
	// order matters: relative atom positions feed MeanPos).
	LineKeys []string
	// EdgeKeys are the script's data-flow edge keys (a multiset).
	EdgeKeys []string
	// UnigramKeys are the script's 1-gram atom keys.
	UnigramKeys []string
}

// StatsOf extracts one script's fold contribution from its DAG.
func StatsOf(g *dag.Graph, weight int) ScriptStats {
	st := ScriptStats{
		Weight:      weight,
		LineKeys:    make([]string, len(g.Lines)),
		EdgeKeys:    make([]string, len(g.Edges)),
		UnigramKeys: g.Unigrams,
	}
	for i, li := range g.Lines {
		st.LineKeys[i] = li.Key
	}
	for i, e := range g.Edges {
		st.EdgeKeys[i] = e.Key()
	}
	return st
}

// BuildVocabWeighted curates the search space with per-script integer
// weights (Section 8 suggests weighting scripts by expert authorship or
// Kaggle vote counts). A weight w makes the script count as w copies in
// every distribution; nil weights or non-positive entries default to 1.
func BuildVocabWeighted(graphs []*dag.Graph, weights []int) *Vocab {
	stats := make([]ScriptStats, len(graphs))
	atoms := map[string]dag.LineInfo{}
	for gi, g := range graphs {
		w := 1
		if gi < len(weights) && weights[gi] > 0 {
			w = weights[gi]
		}
		stats[gi] = StatsOf(g, w)
		for _, li := range g.Lines {
			if _, ok := atoms[li.Key]; !ok {
				atoms[li.Key] = li
			}
		}
	}
	return BuildVocabFromStats(stats, atoms)
}

// BuildVocabFromStats folds per-script stats into a fresh Vocab. It is the
// single fold both curation paths share: BuildVocabWeighted delegates here,
// and the corpus registry re-folds its cached stats here after incremental
// membership changes — so the incremental result is byte-identical to a
// from-scratch curation of the same scripts in the same order (the
// floating-point MeanPos accumulation runs the exact same operation
// sequence). atoms supplies the representative LineInfo per line-atom key;
// an atom key is its canonical lemmatized source, so the representative is
// the same whichever script contributed it.
func BuildVocabFromStats(stats []ScriptStats, atoms map[string]dag.LineInfo) *Vocab {
	v := &Vocab{
		EdgeCounts:    map[string]int{},
		LineCounts:    map[string]int{},
		UnigramCounts: map[string]int{},
		Lines:         map[string]dag.LineInfo{},
		MeanPos:       map[string]float64{},
		NumScripts:    0,
	}
	posSum := map[string]float64{}
	posN := map[string]int{}
	for _, st := range stats {
		w := st.Weight
		if w <= 0 {
			w = 1
		}
		v.NumScripts += w
		for _, ek := range st.EdgeKeys {
			v.EdgeCounts[ek] += w
			v.TotalEdges += w
		}
		n := len(st.LineKeys)
		for i, lk := range st.LineKeys {
			v.LineCounts[lk] += w
			if _, ok := v.Lines[lk]; !ok {
				v.Lines[lk] = atoms[lk]
			}
			if n > 1 {
				posSum[lk] += float64(w) * float64(i) / float64(n-1)
			}
			posN[lk] += w
		}
		for _, u := range st.UnigramKeys {
			v.UnigramCounts[u] += w
		}
	}
	for k, n := range posN {
		v.MeanPos[k] = posSum[k] / float64(n)
	}
	return v
}

// NumUniqueEdges returns |V_E'|, the edge vocabulary size.
func (v *Vocab) NumUniqueEdges() int { return len(v.EdgeCounts) }

// NumUniqueLines returns the number of distinct line (n-gram) atoms.
func (v *Vocab) NumUniqueLines() int { return len(v.LineCounts) }

// NumUniqueUnigrams returns the number of distinct 1-gram atoms.
func (v *Vocab) NumUniqueUnigrams() int { return len(v.UnigramCounts) }

// SortedLineKeys returns the line-atom keys ordered by descending corpus
// count, ties broken lexicographically, for deterministic enumeration.
func (v *Vocab) SortedLineKeys() []string {
	keys := make([]string, 0, len(v.LineCounts))
	for k := range v.LineCounts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if v.LineCounts[keys[i]] != v.LineCounts[keys[j]] {
			return v.LineCounts[keys[i]] > v.LineCounts[keys[j]]
		}
		return keys[i] < keys[j]
	})
	return keys
}

// REFromEdges computes the smoothed relative entropy of a script whose
// data-flow edges are given as keys, against the corpus distribution.
// An empty edge list yields the maximum possible RE over the union space
// (a script with no steps is maximally non-standard relative to any corpus
// with steps; the paper leaves this case undefined).
func (v *Vocab) REFromEdges(edgeKeys []string) float64 {
	p := map[string]int{}
	for _, k := range edgeKeys {
		p[k]++
	}
	// Union sample space: corpus edges plus script edges.
	space := make(map[string]bool, len(v.EdgeCounts)+len(p))
	for k := range v.EdgeCounts {
		space[k] = true
	}
	for k := range p {
		space[k] = true
	}
	qTotal := float64(v.TotalEdges) + Epsilon*float64(len(space))
	pTotal := float64(len(edgeKeys))
	// Sum in sorted key order so the floating-point result is identical
	// across runs (map iteration order would otherwise perturb ties in the
	// beam search).
	if pTotal == 0 {
		// Treat as a uniform P over the space: maximally uninformative.
		n := float64(len(space))
		if n == 0 {
			return 0
		}
		keys := make([]string, 0, len(space))
		for k := range space {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		re := 0.0
		for _, k := range keys {
			px := 1.0 / n
			qx := (float64(v.EdgeCounts[k]) + Epsilon) / qTotal
			re += px * math.Log(px/qx)
		}
		return re
	}
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	re := 0.0
	for _, k := range keys {
		px := float64(p[k]) / pTotal
		qx := (float64(v.EdgeCounts[k]) + Epsilon) / qTotal
		re += px * math.Log(px/qx)
	}
	return re
}

// RE computes the smoothed relative entropy of a script DAG w.r.t. the
// corpus (Definition 4.1).
func (v *Vocab) RE(g *dag.Graph) float64 {
	keys := make([]string, len(g.Edges))
	for i, e := range g.Edges {
		keys[i] = e.Key()
	}
	return v.REFromEdges(keys)
}

// RELines computes the smoothed relative entropy of a line-atom sequence,
// deriving its edges first. This is the scoring primitive of the search.
func (v *Vocab) RELines(lines []dag.LineInfo) float64 {
	return v.REFromEdges(dag.EdgeKeysOf(lines))
}

// Improvement returns the paper's "% improvement" of a modified script over
// the original: (RE(s_u) - RE(ŝ_u)) / RE(s_u) × 100.
func Improvement(reOrig, reNew float64) float64 {
	if reOrig == 0 {
		return 0
	}
	return (reOrig - reNew) / reOrig * 100
}
