package entropy

import (
	"encoding/json"
	"fmt"
	"io"

	"lucidscript/internal/dag"
	"lucidscript/internal/script"
)

// vocabDTO is the on-disk form of a curated search space. Line atoms are
// stored as canonical source text and re-parsed on load, so the format is
// stable across internal AST changes.
type vocabDTO struct {
	Version       int                `json:"version"`
	NumScripts    int                `json:"num_scripts"`
	TotalEdges    int                `json:"total_edges"`
	EdgeCounts    map[string]int     `json:"edge_counts"`
	LineCounts    map[string]int     `json:"line_counts"`
	UnigramCounts map[string]int     `json:"unigram_counts"`
	MeanPos       map[string]float64 `json:"mean_pos"`
	// Lines hold the insertable atom sources keyed by atom key; the key is
	// itself the canonical source, but is kept explicit for forward
	// compatibility with richer atom identities.
	Lines map[string]string `json:"lines"`
}

const vocabFormatVersion = 1

// Encode writes the curated search space as JSON, so the offline phase
// (Section 5.1) can run once and be reused across sessions and processes.
func (v *Vocab) Encode(w io.Writer) error {
	dto := vocabDTO{
		Version:       vocabFormatVersion,
		NumScripts:    v.NumScripts,
		TotalEdges:    v.TotalEdges,
		EdgeCounts:    v.EdgeCounts,
		LineCounts:    v.LineCounts,
		UnigramCounts: v.UnigramCounts,
		MeanPos:       v.MeanPos,
		Lines:         map[string]string{},
	}
	for key, li := range v.Lines {
		dto.Lines[key] = li.Stmt.Source()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(dto)
}

// DecodeVocab reads a search space written by Encode, re-parsing the
// stored atoms.
func DecodeVocab(r io.Reader) (*Vocab, error) {
	var dto vocabDTO
	if err := json.NewDecoder(r).Decode(&dto); err != nil {
		return nil, fmt.Errorf("entropy: decoding search space: %w", err)
	}
	if dto.Version != vocabFormatVersion {
		return nil, fmt.Errorf("entropy: unsupported search-space version %d", dto.Version)
	}
	v := &Vocab{
		NumScripts:    dto.NumScripts,
		TotalEdges:    dto.TotalEdges,
		EdgeCounts:    orEmpty(dto.EdgeCounts),
		LineCounts:    orEmpty(dto.LineCounts),
		UnigramCounts: orEmpty(dto.UnigramCounts),
		MeanPos:       dto.MeanPos,
		Lines:         map[string]dag.LineInfo{},
	}
	if v.MeanPos == nil {
		v.MeanPos = map[string]float64{}
	}
	for key, src := range dto.Lines {
		st, err := script.ParseStmt(src)
		if err != nil {
			return nil, fmt.Errorf("entropy: stored atom %q does not parse: %w", src, err)
		}
		li := dag.NewLineInfo(st)
		if li.Key != key {
			return nil, fmt.Errorf("entropy: stored atom key mismatch: %q vs %q", li.Key, key)
		}
		v.Lines[key] = li
	}
	return v, nil
}

func orEmpty(m map[string]int) map[string]int {
	if m == nil {
		return map[string]int{}
	}
	return m
}
