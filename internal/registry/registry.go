// Package registry persists a curated corpus — the precomputed atom/edge
// distributions, lemma tables, and per-script metadata of the paper's
// offline phase (§5.1) — to a versioned on-disk format, so a serving
// process boots against a warm corpus without re-paying curation, and
// corpus membership changes re-curate incrementally instead of from
// scratch.
//
// The incremental path caches one entropy.ScriptStats per corpus member
// (its atom-key sequences; the expensive lemmatization ran exactly once,
// when the script entered the corpus) and re-folds the live members in
// insertion order through entropy.BuildVocabFromStats — the same fold
// core.Curate uses — after every Apply. Because the fold sees the same
// stats in the same order, the incremental result is byte-identical to a
// from-scratch curation of the surviving scripts, floating-point
// accumulation included; TestIncrementalCurationEquivalence holds the
// system to exactly that.
//
// Versions are monotonically increasing integers. Publish writes snapshot
// corpus-%08d.reg atomically (temp + fsync + rename) and then swings the
// CURRENT pointer, so readers always see a complete snapshot; Open falls
// back to the newest loadable version when the pointed-at file is damaged,
// and FuzzRegistryLoad hammers that loader with truncations, bit flips,
// and section swaps.
package registry

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"lucidscript/internal/dag"
	"lucidscript/internal/entropy"
	"lucidscript/internal/script"
)

// The typed errors. Everything the loader can hit in a damaged directory
// wraps ErrCorrupt; membership mistakes in Apply get their own sentinels so
// callers can distinguish operator error from data damage.
var (
	// ErrCorrupt marks a snapshot file the loader rejected — truncated,
	// bit-flipped, mis-ordered, or internally inconsistent. Open recovers
	// to the newest older version when one loads cleanly.
	ErrCorrupt = errors.New("registry: corrupt corpus snapshot")
	// ErrNoCorpus reports an Open against a directory with no loadable
	// snapshot at all.
	ErrNoCorpus = errors.New("registry: no corpus snapshots")
	// ErrUnknownScript reports an Apply removal naming no live corpus
	// member.
	ErrUnknownScript = errors.New("registry: unknown script id")
	// ErrDuplicateScript reports an Apply addition (or Create input)
	// reusing a live member's id.
	ErrDuplicateScript = errors.New("registry: duplicate script id")
	// ErrBadScript reports a corpus script whose source does not parse.
	ErrBadScript = errors.New("registry: script does not parse")
)

// Script is one corpus member: a stable identity, LSL source, and an
// optional corpus weight (≤ 0 folds as 1, matching core.CurateWeighted).
type Script struct {
	ID     string
	Source string
	Weight int
}

// record is one corpus member's resident state: identity, source, and the
// cached fold contribution. Removal tombstones the record in place (dead)
// so insertion order — which fixes the fold's floating-point operation
// order — survives arbitrarily interleaved adds and removes; compaction
// drops tombstones once they outnumber half the slice.
type record struct {
	id     string
	source string
	weight int
	stats  entropy.ScriptStats
	dead   bool
}

// compactionFloor is the minimum tombstone count before compaction runs;
// below it the slice is too small for the dead fraction to matter.
const compactionFloor = 64

// retainVersions is how many published snapshots Publish leaves on disk;
// older ones are pruned. The retained window is what Open's
// recover-to-last-good fallback walks.
const retainVersions = 3

// Registry is a persistent, versioned corpus. All methods are safe for
// concurrent use; Vocab returns immutable snapshots (Apply folds a fresh
// vocabulary and swaps the pointer), so a System built from one version
// keeps serving that version while the registry moves on — the substrate
// of the serve tier's hot-swap.
type Registry struct {
	dir string

	mu      sync.Mutex
	version int64
	vocab   *entropy.Vocab
	numLive int
	path    string // snapshot backing the lazy scripts section ("" once loaded)

	loaded  bool
	records []*record
	index   map[string]int // live id → records position
	atoms   map[string]dag.LineInfo
	dead    int

	diags []string
}

// Create curates scripts from scratch, builds the registry state in
// memory, and publishes it as the directory's next version (version 1 in
// an empty directory). The directory is created if needed.
func Create(dir string, scripts []Script) (*Registry, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	r := &Registry{
		dir:    dir,
		loaded: true,
		index:  map[string]int{},
		atoms:  map[string]dag.LineInfo{},
	}
	staged, err := r.stage(scripts)
	if err != nil {
		return nil, err
	}
	for _, rec := range staged {
		r.index[rec.id] = len(r.records)
		r.records = append(r.records, rec)
	}
	r.refoldLocked()
	if _, err := r.publishLocked(); err != nil {
		return nil, err
	}
	return r, nil
}

// Open loads the directory's published corpus: the CURRENT version first,
// then — when that file is missing or damaged — newer-to-older over the
// remaining snapshots until one loads cleanly (the recover-to-last-good
// path; what was skipped is reported by Diagnostics). Only the meta and
// vocab sections are read: per-script state stays on disk until the first
// Apply needs it, so opening a 10⁵-script corpus costs the vocabulary
// decode, not the corpus.
func Open(dir string) (*Registry, error) {
	versions, err := listVersions(dir)
	if err != nil {
		return nil, err
	}
	if len(versions) == 0 {
		return nil, fmt.Errorf("%w in %s", ErrNoCorpus, dir)
	}
	// Candidate order: CURRENT's version first, then the rest descending.
	var candidates []int64
	if cur := readCurrent(dir); cur != 0 {
		candidates = append(candidates, cur)
	} else {
		candidates = append(candidates, 0) // placeholder diag below
	}
	for i := len(versions) - 1; i >= 0; i-- {
		if versions[i] != candidates[0] {
			candidates = append(candidates, versions[i])
		}
	}
	r := &Registry{dir: dir}
	if candidates[0] == 0 {
		candidates = candidates[1:]
		r.diags = append(r.diags, "CURRENT pointer missing or malformed; falling back to newest snapshot")
	}
	var lastErr error
	for _, v := range candidates {
		path := filepath.Join(dir, snapshotName(v))
		meta, vocab, err := loadHeaderFile(path)
		if err != nil {
			lastErr = err
			r.diags = append(r.diags, fmt.Sprintf("%s: %v", snapshotName(v), err))
			continue
		}
		if meta.Version != v {
			lastErr = fmt.Errorf("%w: %s carries version %d", ErrCorrupt, snapshotName(v), meta.Version)
			r.diags = append(r.diags, lastErr.Error())
			continue
		}
		r.version = meta.Version
		r.vocab = vocab
		r.numLive = meta.Scripts
		r.path = path
		return r, nil
	}
	return nil, fmt.Errorf("registry: no loadable snapshot in %s: %w", dir, lastErr)
}

// loadHeaderFile reads a snapshot's warm prefix (meta + vocab).
func loadHeaderFile(path string) (*fileMeta, *entropy.Vocab, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return readHeader(bufio.NewReaderSize(f, 1<<16))
}

// IsInitialized reports whether dir holds at least one corpus snapshot —
// the daemons' "warm boot or cold seed?" probe.
func IsInitialized(dir string) bool {
	versions, err := listVersions(dir)
	return err == nil && len(versions) > 0
}

// Version is the corpus version this registry currently holds.
func (r *Registry) Version() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.version
}

// Vocab returns the current curated search space. The returned value is an
// immutable snapshot: Apply never mutates a published vocabulary, it folds
// a fresh one, so callers may hold the pointer across reloads.
func (r *Registry) Vocab() *entropy.Vocab {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.vocab
}

// NumScripts is the live corpus membership count.
func (r *Registry) NumScripts() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.numLive
}

// Members returns the live corpus membership in curation (insertion)
// order. It forces a lazy registry to load its script section; callers
// that only need the vocabulary should not call it.
func (r *Registry) Members() ([]Script, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.ensureLoadedLocked(); err != nil {
		return nil, err
	}
	live := r.liveLocked()
	out := make([]Script, len(live))
	for i, rec := range live {
		out[i] = Script{ID: rec.id, Source: rec.source, Weight: rec.weight}
	}
	return out, nil
}

// Diagnostics lists the recovery decisions Open made (snapshots skipped as
// damaged, a missing CURRENT pointer). Empty on a clean open.
func (r *Registry) Diagnostics() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.diags...)
}

// Apply re-curates incrementally: remove tombstones live members by id,
// add lemmatizes and appends new members, and the surviving stats re-fold
// into a fresh vocabulary. Only the added scripts are lemmatized — the
// cost is O(adds) lemmatization plus one cheap fold over cached stats,
// not a from-scratch curation — yet the resulting state is byte-identical
// to Create over the same membership. Validation runs before any
// mutation, so a failed Apply leaves the registry untouched. The change is
// in-memory until Publish.
func (r *Registry) Apply(add, remove []Script) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.ensureLoadedLocked(); err != nil {
		return err
	}
	for _, s := range remove {
		if _, ok := r.index[s.ID]; !ok {
			return fmt.Errorf("%w: removing %q", ErrUnknownScript, s.ID)
		}
	}
	for _, s := range add {
		if _, ok := r.index[s.ID]; ok {
			return fmt.Errorf("%w: adding %q", ErrDuplicateScript, s.ID)
		}
	}
	staged, err := r.stage(add)
	if err != nil {
		return err
	}
	for _, s := range remove {
		pos := r.index[s.ID]
		r.records[pos].dead = true
		delete(r.index, s.ID)
		r.dead++
	}
	for _, rec := range staged {
		r.index[rec.id] = len(r.records)
		r.records = append(r.records, rec)
	}
	r.maybeCompactLocked()
	r.refoldLocked()
	return nil
}

// stage parses and lemmatizes scripts into records without touching the
// registry, also rejecting duplicate ids within the batch itself.
func (r *Registry) stage(scripts []Script) ([]*record, error) {
	seen := map[string]bool{}
	staged := make([]*record, 0, len(scripts))
	for _, s := range scripts {
		if s.ID == "" {
			return nil, fmt.Errorf("%w: empty id", ErrBadScript)
		}
		if seen[s.ID] {
			return nil, fmt.Errorf("%w: %q appears twice in one batch", ErrDuplicateScript, s.ID)
		}
		seen[s.ID] = true
		parsed, err := script.Parse(s.Source)
		if err != nil {
			return nil, fmt.Errorf("%w: %q: %v", ErrBadScript, s.ID, err)
		}
		g := dag.Build(parsed)
		w := s.Weight
		if w <= 0 {
			w = 1
		}
		rec := &record{id: s.ID, source: s.Source, weight: w, stats: entropy.StatsOf(g, w)}
		staged = append(staged, rec)
		for _, li := range g.Lines {
			if _, ok := r.atoms[li.Key]; !ok {
				r.atoms[li.Key] = li
			}
		}
	}
	return staged, nil
}

// refoldLocked rebuilds the vocabulary from the live records, in insertion
// order — the identical operation sequence a from-scratch curation of the
// same scripts would run.
func (r *Registry) refoldLocked() {
	stats := make([]entropy.ScriptStats, 0, len(r.records)-r.dead)
	for _, rec := range r.records {
		if !rec.dead {
			stats = append(stats, rec.stats)
		}
	}
	r.vocab = entropy.BuildVocabFromStats(stats, r.atoms)
	r.numLive = len(stats)
}

// maybeCompactLocked drops tombstones once they exceed both the floor and
// half the slice, rebuilding the id index and pruning the atom table to
// the atoms live records still reference. Live order is preserved, so
// compaction never perturbs the fold.
func (r *Registry) maybeCompactLocked() {
	if r.dead < compactionFloor || 2*r.dead <= len(r.records) {
		return
	}
	live := make([]*record, 0, len(r.records)-r.dead)
	index := make(map[string]int, len(r.records)-r.dead)
	atoms := make(map[string]dag.LineInfo)
	for _, rec := range r.records {
		if rec.dead {
			continue
		}
		index[rec.id] = len(live)
		live = append(live, rec)
		for _, lk := range rec.stats.LineKeys {
			if _, ok := atoms[lk]; !ok {
				atoms[lk] = r.atoms[lk]
			}
		}
	}
	r.records, r.index, r.atoms, r.dead = live, index, atoms, 0
}

// ensureLoadedLocked materializes the scripts section on first need. The
// section's CRC guards its bytes; on top of that the cached stats are
// re-folded and required to reproduce the vocab section exactly, so a
// file whose sections individually pass CRC but disagree with each other
// (the section-swap corruption) is rejected instead of silently loaded.
func (r *Registry) ensureLoadedLocked() error {
	if r.loaded {
		return nil
	}
	scripts, _, err := readScriptsAt(r.path)
	if err != nil {
		return err
	}
	atomKeys := sortedAtomKeys(r.vocab)
	atoms := make(map[string]dag.LineInfo, len(atomKeys))
	unigramMemo := make(map[string][]string, len(atomKeys))
	for _, k := range atomKeys {
		li := r.vocab.Lines[k]
		atoms[k] = li
		unigramMemo[k] = dag.UnigramAtoms(li.Stmt)
	}
	records := make([]*record, 0, len(scripts))
	index := make(map[string]int, len(scripts))
	for _, fs := range scripts {
		if fs.ID == "" {
			return fmt.Errorf("%w: scripts section entry with empty id", ErrCorrupt)
		}
		if _, dup := index[fs.ID]; dup {
			return fmt.Errorf("%w: scripts section repeats id %q", ErrCorrupt, fs.ID)
		}
		lineKeys := make([]string, len(fs.Lines))
		lineInfos := make([]dag.LineInfo, len(fs.Lines))
		var unigrams []string
		for i, idx := range fs.Lines {
			if idx < 0 || idx >= len(atomKeys) {
				return fmt.Errorf("%w: script %q references atom %d of %d", ErrCorrupt, fs.ID, idx, len(atomKeys))
			}
			k := atomKeys[idx]
			lineKeys[i] = k
			lineInfos[i] = atoms[k]
			unigrams = append(unigrams, unigramMemo[k]...)
		}
		w := fs.Weight
		if w <= 0 {
			w = 1
		}
		rec := &record{
			id:     fs.ID,
			source: fs.Source,
			weight: w,
			stats: entropy.ScriptStats{
				Weight:      w,
				LineKeys:    lineKeys,
				EdgeKeys:    dag.EdgeKeysOf(lineInfos),
				UnigramKeys: unigrams,
			},
		}
		index[rec.id] = len(records)
		records = append(records, rec)
	}
	// Cross-section consistency: the stats must fold back to the very
	// vocabulary the file carries.
	stats := make([]entropy.ScriptStats, len(records))
	for i, rec := range records {
		stats[i] = rec.stats
	}
	refolded := entropy.BuildVocabFromStats(stats, atoms)
	same, err := vocabsEqual(refolded, r.vocab)
	if err != nil {
		return err
	}
	if !same {
		return fmt.Errorf("%w: scripts section does not fold to the stored vocabulary (mixed snapshot versions?)", ErrCorrupt)
	}
	r.records, r.index, r.atoms, r.dead = records, index, atoms, 0
	r.loaded = true
	r.path = ""
	return nil
}

// vocabsEqual compares two vocabularies via their canonical encoding —
// bitwise on every count and float.
func vocabsEqual(a, b *entropy.Vocab) (bool, error) {
	var ab, bb bytes.Buffer
	if err := a.Encode(&ab); err != nil {
		return false, err
	}
	if err := b.Encode(&bb); err != nil {
		return false, err
	}
	return bytes.Equal(ab.Bytes(), bb.Bytes()), nil
}

// Publish writes the registry's current state as the directory's next
// version (atomic temp + fsync + rename), swings CURRENT to it, prunes
// snapshots beyond the retention window, and returns the new version.
// Tombstones never reach disk — a snapshot always carries exactly the
// live membership, in insertion order.
func (r *Registry) Publish() (int64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.ensureLoadedLocked(); err != nil {
		return 0, err
	}
	return r.publishLocked()
}

func (r *Registry) publishLocked() (int64, error) {
	versions, err := listVersions(r.dir)
	if err != nil {
		return 0, err
	}
	next := int64(1)
	if n := len(versions); n > 0 {
		next = versions[n-1] + 1
	}
	live := r.liveLocked()
	name := snapshotName(next)
	if err := writeFileAtomic(r.dir, name, func(w io.Writer) error {
		return encodeSnapshot(w, next, r.vocab, live)
	}); err != nil {
		return 0, fmt.Errorf("registry: publishing %s: %w", name, err)
	}
	if err := writeFileAtomic(r.dir, currentFile, func(w io.Writer) error {
		_, werr := io.WriteString(w, name+"\n")
		return werr
	}); err != nil {
		return 0, fmt.Errorf("registry: updating %s: %w", currentFile, err)
	}
	r.version = next
	// Prune beyond the retention window; failures are non-fatal (the next
	// publish retries) and stale files are harmless to readers.
	versions = append(versions, next)
	for len(versions) > retainVersions {
		os.Remove(filepath.Join(r.dir, snapshotName(versions[0])))
		versions = versions[1:]
	}
	return next, nil
}

// liveLocked returns the live records in insertion order.
func (r *Registry) liveLocked() []*record {
	live := make([]*record, 0, len(r.records)-r.dead)
	for _, rec := range r.records {
		if !rec.dead {
			live = append(live, rec)
		}
	}
	return live
}

// StateBytes serializes the full corpus state — vocabulary, atom table,
// per-script metadata, insertion order — with the version pinned to zero,
// so two registries hold byte-identical state exactly when their corpora
// were curated identically. It exists for the differential equivalence
// tests; Publish is the persistence path.
func (r *Registry) StateBytes() ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.ensureLoadedLocked(); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := encodeSnapshot(&buf, 0, r.vocab, r.liveLocked()); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
