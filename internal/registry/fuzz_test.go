package registry

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// fuzzSeedSnapshot renders a small valid snapshot for the fuzzer to mutate.
func fuzzSeedSnapshot(t testing.TB) []byte {
	t.Helper()
	dir := t.TempDir()
	if _, err := Create(dir, []Script{
		{ID: "a", Source: "import pandas as pd\ndf = pd.read_csv(\"d.csv\")\ndf = df.dropna()\n"},
		{ID: "b", Source: "import pandas as pd\ndf = pd.read_csv(\"d.csv\")\ndf = df.fillna(df.median())\n", Weight: 3},
	}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, snapshotName(1)))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// FuzzRegistryLoad throws arbitrary bytes at the snapshot loader as the
// CURRENT version of a registry directory. The loader's contract under any
// corruption — truncation, bit flips, swapped or duplicated sections,
// garbage — is a typed error or a successful, internally consistent load;
// never a panic, never silently loading garbage. When a known-good older
// snapshot sits beside the corrupted one, Open must recover to it.
func FuzzRegistryLoad(f *testing.F) {
	valid := fuzzSeedSnapshot(f)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("lsreg 1\n"))
	f.Add([]byte("lsreg 1\nmeta 2 00000000\n{}\n"))
	f.Add(valid[:len(valid)/2])                                      // truncated mid-file
	f.Add(valid[:len(valid)-1])                                      // missing final separator
	f.Add(append([]byte("lsreg 2\n"), valid[8:]...))                 // wrong magic version
	f.Add(bytes.Replace(valid, []byte("vocab"), []byte("scrip"), 1)) // section misnamed
	flipped := append([]byte{}, valid...)
	flipped[len(flipped)/3] ^= 0x10
	f.Add(flipped) // bit flip in a payload
	if i := bytes.Index(valid, []byte("\nscripts ")); i > 0 {
		// Sections re-ordered: scripts where vocab belongs.
		swapped := append([]byte{}, valid[:bytes.Index(valid, []byte("\nvocab "))+1]...)
		swapped = append(swapped, valid[i+1:]...)
		f.Add(swapped)
	}
	f.Add([]byte("lsreg 1\nmeta 99999999999 ffffffff\n")) // allocation-bomb length

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, snapshotName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, currentFile), []byte(snapshotName(1)+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		reg, err := Open(dir)
		if err != nil {
			// A rejected load must be a typed error the caller can classify:
			// ErrCorrupt for damage, or the deliberate "unsupported format"
			// rejection — never a bare failure, never a panic.
			if !errors.Is(err, ErrCorrupt) && !isFormatRejection(err) {
				t.Fatalf("untyped load error: %v", err)
			}
		} else {
			// The header loaded: the lazy scripts path must also either load
			// a consistent corpus or reject it — never panic.
			if reg.Version() != 1 {
				t.Fatalf("loaded version %d from corpus-00000001.reg", reg.Version())
			}
			if aerr := reg.Apply(nil, nil); aerr != nil && !errors.Is(aerr, ErrCorrupt) {
				t.Fatalf("untyped lazy-load error: %v", aerr)
			}
		}

		// Recovery: the same bytes beside a good older version must never
		// mask it — Open always lands on a loadable snapshot.
		good := valid
		dir2 := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir2, snapshotName(1)), good, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir2, snapshotName(2)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir2, currentFile), []byte(snapshotName(2)+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		reg2, err := Open(dir2)
		if err != nil {
			t.Fatalf("good v1 present but Open failed: %v", err)
		}
		if v := reg2.Version(); v != 1 && v != 2 {
			t.Fatalf("recovered to impossible version %d", v)
		}
	})
}

// isFormatRejection classifies the loader's deliberate "future format"
// rejections, which are typed by message rather than sentinel (they are not
// corruption).
func isFormatRejection(err error) bool {
	msg := err.Error()
	return bytes.Contains([]byte(msg), []byte("unsupported snapshot format")) ||
		bytes.Contains([]byte(msg), []byte("unsupported search-space version"))
}
