// On-disk corpus snapshot format.
//
// A snapshot file ("corpus-%08d.reg") is a magic line followed by three
// CRC-guarded sections, each framed as
//
//	<name> <payload-length> <crc32-hex>\n
//	<payload bytes>\n
//
// in fixed order:
//
//	meta    — JSON: format version, corpus version, script/atom counts
//	vocab   — the folded search space (internal/entropy's persisted form)
//	scripts — JSON: per-script metadata (id, weight, source, atom indices)
//
// The scripts section is deliberately last: a warm load reads meta and
// vocab and stops, so boot never pays for the (much larger) per-script
// state it only needs if membership later changes (Registry.Apply).
//
// A "CURRENT" pointer file names the published snapshot. Both the snapshot
// and the pointer are written with the temp + fsync + rename idiom of
// internal/serve/store, so a crash mid-publish leaves the previous version
// intact and readable.
package registry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"lucidscript/internal/entropy"
)

const (
	// magic is the snapshot file's first line: format name + major version.
	magic = "lsreg 1"
	// formatVersion is the snapshot layout version carried in the meta
	// section; a reader rejects files from a future layout.
	formatVersion = 1
	// currentFile names the published-version pointer in a registry dir.
	currentFile = "CURRENT"
	// snapshotPattern matches the versioned snapshot files.
	snapshotPattern = "corpus-*.reg"
	// maxSectionBytes caps a section header's declared payload length, so a
	// corrupted (or adversarial) length field cannot provoke a huge
	// allocation before the CRC check has a chance to reject the payload.
	maxSectionBytes = 1 << 30
)

// The section names, in file order.
const (
	sectionMeta    = "meta"
	sectionVocab   = "vocab"
	sectionScripts = "scripts"
)

// fileMeta is the meta section's JSON payload.
type fileMeta struct {
	Format  int   `json:"format"`
	Version int64 `json:"version"`
	Scripts int   `json:"scripts"`
	Atoms   int   `json:"atoms"`
}

// fileScript is one scripts-section entry. Lines holds indices into the
// sorted atom-key list of the vocab section (the atom table), so the large
// per-script state never repeats atom sources.
type fileScript struct {
	ID     string `json:"id"`
	Weight int    `json:"weight"`
	Source string `json:"source"`
	Lines  []int  `json:"lines"`
}

// snapshotName renders a version's file name.
func snapshotName(version int64) string {
	return fmt.Sprintf("corpus-%08d.reg", version)
}

// snapshotVersion parses a snapshot file name back to its version, ok=false
// for files that merely match the glob shape.
func snapshotVersion(name string) (int64, bool) {
	var v int64
	if _, err := fmt.Sscanf(name, "corpus-%d.reg", &v); err != nil || v <= 0 {
		return 0, false
	}
	if name != snapshotName(v) {
		return 0, false
	}
	return v, true
}

// sortedAtomKeys is the atom table order: the vocab's line-atom keys,
// sorted. Deterministic, and reconstructible from the vocab section alone.
func sortedAtomKeys(v *entropy.Vocab) []string {
	keys := make([]string, 0, len(v.Lines))
	for k := range v.Lines {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// writeSection frames one section: header line, payload, separator.
func writeSection(w io.Writer, name string, payload []byte) error {
	if _, err := fmt.Fprintf(w, "%s %d %08x\n", name, len(payload), crc32.ChecksumIEEE(payload)); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// readSection reads and verifies the named section. Every deviation —
// wrong name, malformed header, truncated payload, CRC mismatch, missing
// separator — is ErrCorrupt; the caller falls back to an older version.
func readSection(br *bufio.Reader, want string) ([]byte, error) {
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("%w: reading %s header: %v", ErrCorrupt, want, err)
	}
	var name string
	var length int64
	var sum uint32
	if _, err := fmt.Sscanf(strings.TrimSuffix(header, "\n"), "%s %d %x", &name, &length, &sum); err != nil {
		return nil, fmt.Errorf("%w: malformed %s header %q", ErrCorrupt, want, strings.TrimSpace(header))
	}
	if name != want {
		return nil, fmt.Errorf("%w: section %q where %q was expected", ErrCorrupt, name, want)
	}
	if length < 0 || length > maxSectionBytes {
		return nil, fmt.Errorf("%w: %s section claims %d bytes", ErrCorrupt, want, length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, fmt.Errorf("%w: %s section truncated: %v", ErrCorrupt, want, err)
	}
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return nil, fmt.Errorf("%w: %s section checksum %08x, want %08x", ErrCorrupt, want, got, sum)
	}
	if sep, err := br.ReadByte(); err != nil || sep != '\n' {
		return nil, fmt.Errorf("%w: %s section missing separator", ErrCorrupt, want)
	}
	return payload, nil
}

// encodeSnapshot writes a complete snapshot: magic plus the three sections.
// The encoding is deterministic for a given corpus state and version —
// JSON maps marshal with sorted keys and the scripts array preserves
// insertion order — which is what lets the differential tests compare
// registry states byte-for-byte.
func encodeSnapshot(w io.Writer, version int64, vocab *entropy.Vocab, recs []*record) error {
	meta, err := json.Marshal(fileMeta{
		Format:  formatVersion,
		Version: version,
		Scripts: len(recs),
		Atoms:   len(vocab.Lines),
	})
	if err != nil {
		return err
	}
	var vocabBuf bytes.Buffer
	if err := vocab.Encode(&vocabBuf); err != nil {
		return err
	}
	atomIdx := make(map[string]int, len(vocab.Lines))
	for i, k := range sortedAtomKeys(vocab) {
		atomIdx[k] = i
	}
	scripts := make([]fileScript, len(recs))
	for i, rec := range recs {
		fs := fileScript{ID: rec.id, Weight: rec.weight, Source: rec.source, Lines: make([]int, len(rec.stats.LineKeys))}
		for j, lk := range rec.stats.LineKeys {
			idx, ok := atomIdx[lk]
			if !ok {
				return fmt.Errorf("registry: script %q uses atom %q missing from the vocabulary", rec.id, lk)
			}
			fs.Lines[j] = idx
		}
		scripts[i] = fs
	}
	scriptsPayload, err := json.Marshal(scripts)
	if err != nil {
		return err
	}
	if _, err := io.WriteString(w, magic+"\n"); err != nil {
		return err
	}
	for _, s := range []struct {
		name    string
		payload []byte
	}{
		{sectionMeta, meta},
		{sectionVocab, vocabBuf.Bytes()},
		{sectionScripts, scriptsPayload},
	} {
		if err := writeSection(w, s.name, s.payload); err != nil {
			return err
		}
	}
	return nil
}

// readHeader reads the magic line plus the meta and vocab sections — the
// warm-load prefix. The scripts section is untouched (and its bytes never
// read), which is what makes a warm Open cheap at 10⁵ scripts.
func readHeader(br *bufio.Reader) (*fileMeta, *entropy.Vocab, error) {
	line, err := br.ReadString('\n')
	if err != nil || strings.TrimSuffix(line, "\n") != magic {
		return nil, nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, strings.TrimSpace(line))
	}
	metaPayload, err := readSection(br, sectionMeta)
	if err != nil {
		return nil, nil, err
	}
	var meta fileMeta
	if err := json.Unmarshal(metaPayload, &meta); err != nil {
		return nil, nil, fmt.Errorf("%w: meta section: %v", ErrCorrupt, err)
	}
	if meta.Format != formatVersion {
		return nil, nil, fmt.Errorf("registry: unsupported snapshot format %d (this build reads %d)", meta.Format, formatVersion)
	}
	if meta.Version <= 0 || meta.Scripts < 0 || meta.Atoms < 0 {
		return nil, nil, fmt.Errorf("%w: meta section out of range: %+v", ErrCorrupt, meta)
	}
	vocabPayload, err := readSection(br, sectionVocab)
	if err != nil {
		return nil, nil, err
	}
	vocab, err := entropy.DecodeVocab(bytes.NewReader(vocabPayload))
	if err != nil {
		return nil, nil, fmt.Errorf("%w: vocab section: %v", ErrCorrupt, err)
	}
	if len(vocab.Lines) != meta.Atoms {
		return nil, nil, fmt.Errorf("%w: vocab holds %d atoms, meta claims %d", ErrCorrupt, len(vocab.Lines), meta.Atoms)
	}
	return &meta, vocab, nil
}

// readScriptsAt re-opens the snapshot and returns the scripts section,
// skipping (but CRC-checking nothing of) the already-validated prefix.
func readScriptsAt(path string) ([]fileScript, *fileMeta, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("registry: reopening snapshot: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	meta, _, err := readHeader(br)
	if err != nil {
		return nil, nil, err
	}
	payload, err := readSection(br, sectionScripts)
	if err != nil {
		return nil, nil, err
	}
	var scripts []fileScript
	if err := json.Unmarshal(payload, &scripts); err != nil {
		return nil, nil, fmt.Errorf("%w: scripts section: %v", ErrCorrupt, err)
	}
	if len(scripts) != meta.Scripts {
		return nil, nil, fmt.Errorf("%w: scripts section holds %d entries, meta claims %d", ErrCorrupt, len(scripts), meta.Scripts)
	}
	return scripts, meta, nil
}

// writeFileAtomic publishes bytes at path via temp + fsync + rename, the
// same durability idiom as internal/serve/store's snapshot compaction.
func writeFileAtomic(dir, name string, write func(io.Writer) error) error {
	tmp, err := os.CreateTemp(dir, name+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	bw := bufio.NewWriterSize(tmp, 1<<20)
	if err := write(bw); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, filepath.Join(dir, name)); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// listVersions returns the snapshot versions present in dir, ascending.
func listVersions(dir string) ([]int64, error) {
	matches, err := filepath.Glob(filepath.Join(dir, snapshotPattern))
	if err != nil {
		return nil, err
	}
	var versions []int64
	for _, m := range matches {
		if v, ok := snapshotVersion(filepath.Base(m)); ok {
			versions = append(versions, v)
		}
	}
	sort.Slice(versions, func(i, j int) bool { return versions[i] < versions[j] })
	return versions, nil
}

// readCurrent returns the version the CURRENT pointer names, 0 when the
// pointer is absent or does not parse (the caller then scans versions).
func readCurrent(dir string) int64 {
	b, err := os.ReadFile(filepath.Join(dir, currentFile))
	if err != nil {
		return 0
	}
	v, ok := snapshotVersion(strings.TrimSpace(string(b)))
	if !ok {
		return 0
	}
	return v
}
