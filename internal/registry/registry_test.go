package registry

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lucidscript/internal/core"
	"lucidscript/internal/dag"
	"lucidscript/internal/entropy"
	"lucidscript/internal/frame"
	"lucidscript/internal/intent"
	"lucidscript/internal/script"
)

// testSource renders a deterministic corpus script from a small pool of
// realistic data-prep lines, parameterized so distinct ids yield distinct
// (but overlapping) atom sets — the shape the fold's distributions care
// about.
func testSource(i int) string {
	var b strings.Builder
	b.WriteString("import pandas as pd\n")
	b.WriteString("df = pd.read_csv(\"diabetes.csv\")\n")
	switch i % 4 {
	case 0:
		b.WriteString("df = df.fillna(df.median())\n")
	case 1:
		b.WriteString("df = df.dropna()\n")
	case 2:
		b.WriteString("df[\"Glucose\"] = df[\"Glucose\"].fillna(df[\"Glucose\"].mean())\n")
	case 3:
		b.WriteString("df = df.drop_duplicates()\n")
	}
	if i%3 == 0 {
		fmt.Fprintf(&b, "df = df[df[\"Age\"] < %d]\n", 40+10*(i%5))
	}
	if i%5 == 1 {
		b.WriteString("df = df[df[\"Glucose\"] > 0]\n")
	}
	return b.String()
}

// testScript builds corpus member i with a deterministic weight.
func testScript(i int) Script {
	return Script{ID: fmt.Sprintf("s%04d", i), Source: testSource(i), Weight: 1 + i%3}
}

// mustStateBytes is StateBytes with the error folded into the test.
func mustStateBytes(t *testing.T, r *Registry) []byte {
	t.Helper()
	b, err := r.StateBytes()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// oracleCreate curates the given membership from scratch in a throwaway
// directory — the differential tests' ground truth.
func oracleCreate(t *testing.T, scripts []Script) *Registry {
	t.Helper()
	r, err := Create(t.TempDir(), scripts)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestCreateOpenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	scripts := []Script{testScript(0), testScript(1), testScript(2)}
	created, err := Create(dir, scripts)
	if err != nil {
		t.Fatal(err)
	}
	if v := created.Version(); v != 1 {
		t.Fatalf("Create published version %d, want 1", v)
	}
	opened, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if opened.Version() != 1 || opened.NumScripts() != 3 {
		t.Fatalf("opened version=%d scripts=%d", opened.Version(), opened.NumScripts())
	}
	if len(opened.Diagnostics()) != 0 {
		t.Fatalf("clean open produced diagnostics: %v", opened.Diagnostics())
	}
	same, err := vocabsEqual(created.Vocab(), opened.Vocab())
	if err != nil {
		t.Fatal(err)
	}
	if !same {
		t.Fatal("reopened vocabulary differs from the created one")
	}
	// The warm open never touched the scripts section; StateBytes forces the
	// lazy load and must reproduce the created state exactly.
	if !bytes.Equal(mustStateBytes(t, created), mustStateBytes(t, opened)) {
		t.Fatal("warm-opened state differs from created state")
	}
}

func TestCreateRejectsDuplicateIDs(t *testing.T) {
	_, err := Create(t.TempDir(), []Script{testScript(0), testScript(0)})
	if !errors.Is(err, ErrDuplicateScript) {
		t.Fatalf("err = %v, want ErrDuplicateScript", err)
	}
}

func TestOpenNoCorpus(t *testing.T) {
	if _, err := Open(t.TempDir()); !errors.Is(err, ErrNoCorpus) {
		t.Fatalf("err = %v, want ErrNoCorpus", err)
	}
}

// TestIncrementalCurationEquivalence is the differential harness the
// registry's central guarantee rests on: a seeded generative loop applies
// random add/remove batches to one long-lived registry and, after every
// batch, requires the incremental state to be byte-identical to a
// from-scratch curation of the same membership — full serialized state,
// vocabulary encoding against core.Curate, and (at the end) the
// standardization output an engine produces from each.
func TestIncrementalCurationEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	next := 0
	var initial []Script
	for ; next < 12; next++ {
		initial = append(initial, testScript(next))
	}
	reg, err := Create(t.TempDir(), initial)
	if err != nil {
		t.Fatal(err)
	}
	// live mirrors the registry's canonical membership order: removals drop
	// in place, additions append.
	live := append([]Script(nil), initial...)

	rounds := 30
	if testing.Short() {
		rounds = 8
	}
	for round := 0; round < rounds; round++ {
		var remove []Script
		if len(live) > 2 {
			n := rng.Intn(len(live) / 2)
			perm := rng.Perm(len(live))[:n]
			picked := map[int]bool{}
			for _, p := range perm {
				picked[p] = true
				remove = append(remove, live[p])
			}
			kept := live[:0]
			for i, s := range live {
				if !picked[i] {
					kept = append(kept, s)
				}
			}
			live = kept
		}
		var add []Script
		for n := rng.Intn(5); n > 0; n-- {
			s := testScript(next)
			next++
			add = append(add, s)
			live = append(live, s)
		}
		if err := reg.Apply(add, remove); err != nil {
			t.Fatalf("round %d: Apply: %v", round, err)
		}

		oracle := oracleCreate(t, live)
		if !bytes.Equal(mustStateBytes(t, reg), mustStateBytes(t, oracle)) {
			t.Fatalf("round %d: incremental state diverged from from-scratch curation (%d live)", round, len(live))
		}
		// Cross-check against the core curation path itself, not just a
		// second registry: the fold must match core.Curate bit for bit.
		parsed := make([]*script.Script, len(live))
		weights := make([]int, len(live))
		for i, s := range live {
			parsed[i] = script.MustParse(s.Source)
			weights[i] = s.Weight
		}
		cc := core.CurateWeighted(parsed, weights, nil)
		same, err := vocabsEqual(reg.Vocab(), cc.Vocab)
		if err != nil {
			t.Fatal(err)
		}
		if !same {
			t.Fatalf("round %d: incremental vocabulary diverged from core.Curate", round)
		}
	}

	// Both corpora must drive the engine to the same standardized output.
	sources := map[string]*frame.Frame{"diabetes.csv": diabetesFrame(t, 50)}
	user := script.MustParse("import pandas as pd\ndf = pd.read_csv(\"diabetes.csv\")\ndf = df.fillna(df.median())\n")
	oracle := oracleCreate(t, live)
	var hashes [2][32]byte
	for i, r := range []*Registry{reg, oracle} {
		cfg := core.DefaultConfig()
		cfg.SeqLength = 4
		cfg.Constraint = intent.Constraint{Measure: intent.MeasureJaccard, Tau: 0.5}
		st := core.FromCorpus(&core.CuratedCorpus{Vocab: r.Vocab(), Sources: sources, Version: r.Version()}, cfg)
		res, err := st.Standardize(user)
		if err != nil {
			t.Fatal(err)
		}
		hashes[i] = sha256.Sum256([]byte(res.Output.Source()))
	}
	if hashes[0] != hashes[1] {
		t.Fatal("standardization outputs diverged between incremental and from-scratch corpora")
	}
}

// diabetesFrame synthesizes the test dataset (same shape as the core
// package's fixture).
func diabetesFrame(t testing.TB, n int) *frame.Frame {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	var b strings.Builder
	b.WriteString("Pregnancies,Glucose,SkinThickness,Age,Outcome\n")
	for i := 0; i < n; i++ {
		glucose := ""
		if rng.Float64() > 0.1 {
			glucose = fmt.Sprint(80 + rng.Intn(80))
		}
		fmt.Fprintf(&b, "%d,%s,%d,%d,%d\n", rng.Intn(10), glucose, rng.Intn(50), 18+rng.Intn(50), rng.Intn(2))
	}
	f, err := frame.ReadCSVString(b.String())
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestApplyAfterWarmOpenMatchesFresh(t *testing.T) {
	dir := t.TempDir()
	var scripts []Script
	for i := 0; i < 10; i++ {
		scripts = append(scripts, testScript(i))
	}
	if _, err := Create(dir, scripts); err != nil {
		t.Fatal(err)
	}
	reg, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// First Apply after a warm open exercises the lazy scripts load.
	add := []Script{testScript(20), testScript(21)}
	remove := []Script{scripts[3], scripts[7]}
	if err := reg.Apply(add, remove); err != nil {
		t.Fatal(err)
	}
	want := append([]Script{}, scripts[:3]...)
	want = append(want, scripts[4:7]...)
	want = append(want, scripts[8:]...)
	want = append(want, add...)
	oracle := oracleCreate(t, want)
	if !bytes.Equal(mustStateBytes(t, reg), mustStateBytes(t, oracle)) {
		t.Fatal("apply-after-warm-open state diverged from from-scratch curation")
	}
}

func TestApplyValidatesBeforeMutating(t *testing.T) {
	reg := oracleCreate(t, []Script{testScript(0), testScript(1)})
	before := mustStateBytes(t, reg)

	err := reg.Apply([]Script{testScript(5)}, []Script{{ID: "nope"}})
	if !errors.Is(err, ErrUnknownScript) {
		t.Fatalf("unknown removal: err = %v", err)
	}
	err = reg.Apply([]Script{testScript(0)}, nil)
	if !errors.Is(err, ErrDuplicateScript) {
		t.Fatalf("duplicate add: err = %v", err)
	}
	err = reg.Apply([]Script{{ID: "bad", Source: "def f(:\n"}}, []Script{testScript(0)})
	if !errors.Is(err, ErrBadScript) {
		t.Fatalf("unparsable add: err = %v", err)
	}
	if !bytes.Equal(before, mustStateBytes(t, reg)) {
		t.Fatal("failed Apply mutated registry state")
	}
}

func TestCompactionPreservesEquivalence(t *testing.T) {
	var scripts []Script
	for i := 0; i < 200; i++ {
		scripts = append(scripts, testScript(i))
	}
	reg := oracleCreate(t, scripts)
	// Remove three quarters in batches — enough tombstones to cross both
	// compaction thresholds several times over.
	for start := 0; start < 150; start += 50 {
		if err := reg.Apply(nil, scripts[start:start+50]); err != nil {
			t.Fatal(err)
		}
	}
	oracle := oracleCreate(t, scripts[150:])
	if !bytes.Equal(mustStateBytes(t, reg), mustStateBytes(t, oracle)) {
		t.Fatal("post-compaction state diverged from from-scratch curation")
	}
}

func TestPublishVersionsAndRetention(t *testing.T) {
	dir := t.TempDir()
	reg, err := Create(dir, []Script{testScript(0)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		if err := reg.Apply([]Script{testScript(i)}, nil); err != nil {
			t.Fatal(err)
		}
		v, err := reg.Publish()
		if err != nil {
			t.Fatal(err)
		}
		if want := int64(i + 1); v != want {
			t.Fatalf("publish %d assigned version %d, want %d", i, v, want)
		}
	}
	versions, err := listVersions(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(versions) != retainVersions {
		t.Fatalf("retained %d versions (%v), want %d", len(versions), versions, retainVersions)
	}
	opened, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if opened.Version() != 5 || opened.NumScripts() != 5 {
		t.Fatalf("opened version=%d scripts=%d, want 5/5", opened.Version(), opened.NumScripts())
	}
}

func TestOpenRecoversToLastGood(t *testing.T) {
	dir := t.TempDir()
	reg, err := Create(dir, []Script{testScript(0)})
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Apply([]Script{testScript(1)}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Publish(); err != nil {
		t.Fatal(err)
	}
	// Flip one byte in the middle of the newest snapshot.
	path := filepath.Join(dir, snapshotName(2))
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x40
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	opened, err := Open(dir)
	if err != nil {
		t.Fatalf("Open did not recover: %v", err)
	}
	if opened.Version() != 1 {
		t.Fatalf("recovered to version %d, want 1", opened.Version())
	}
	if len(opened.Diagnostics()) == 0 {
		t.Fatal("recovery left no diagnostics")
	}
	// The surviving version must be fully usable, lazy load included.
	if err := opened.Apply([]Script{testScript(9)}, nil); err != nil {
		t.Fatalf("Apply on recovered version: %v", err)
	}
}

func TestOpenSurvivesMissingCurrentPointer(t *testing.T) {
	dir := t.TempDir()
	if _, err := Create(dir, []Script{testScript(0)}); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, currentFile)); err != nil {
		t.Fatal(err)
	}
	opened, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if opened.Version() != 1 {
		t.Fatalf("version = %d, want 1", opened.Version())
	}
	if len(opened.Diagnostics()) == 0 {
		t.Fatal("missing CURRENT left no diagnostics")
	}
}

// TestLoadRejectsSectionSwap forges a snapshot whose sections individually
// pass their CRCs but come from different corpora — the per-section
// checksums cannot catch it, the cross-section refold check must.
func TestLoadRejectsSectionSwap(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	if _, err := Create(dirA, []Script{testScript(0), testScript(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(dirB, []Script{testScript(2), testScript(3), testScript(4)}); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(filepath.Join(dirA, snapshotName(1)))
	if err != nil {
		t.Fatal(err)
	}
	bfile, err := os.ReadFile(filepath.Join(dirB, snapshotName(1)))
	if err != nil {
		t.Fatal(err)
	}
	// Graft B's scripts section onto A's prefix. Both corpora have 2-ish
	// scripts... counts differ, so meta catches some swaps; equalize by
	// using same counts when needed — here counts differ (2 vs 3), so build
	// a second A' with 3 scripts for a count-matched swap.
	dirA2 := t.TempDir()
	if _, err := Create(dirA2, []Script{testScript(5), testScript(6), testScript(7)}); err != nil {
		t.Fatal(err)
	}
	a, err = os.ReadFile(filepath.Join(dirA2, snapshotName(1)))
	if err != nil {
		t.Fatal(err)
	}
	scriptsOf := func(raw []byte) []byte {
		i := bytes.Index(raw, []byte("\nscripts "))
		if i < 0 {
			t.Fatal("no scripts section header")
		}
		return raw[i+1:]
	}
	prefixOf := func(raw []byte) []byte {
		i := bytes.Index(raw, []byte("\nscripts "))
		return raw[:i+1]
	}
	forged := append(append([]byte{}, prefixOf(a)...), scriptsOf(bfile)...)
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, snapshotName(1)), forged, 0o644); err != nil {
		t.Fatal(err)
	}
	reg, err := Open(dir)
	if err != nil {
		// Atom counts may already disagree at the header — that is also a
		// correct rejection.
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
		return
	}
	// Header loaded; the lazy scripts load must reject the graft.
	err = reg.Apply(nil, nil)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("section swap loaded: err = %v, want ErrCorrupt", err)
	}
}

// TestFaultKeyIncludesCorpusVersion pins the fix for dense queue job ids
// aliasing chaos rules across hot-swaps: the SiteBatchJob key is the bare
// index only for unversioned corpora.
func TestFaultKeyIncludesCorpusVersion(t *testing.T) {
	reg := oracleCreate(t, []Script{testScript(0)})
	if reg.Version() == 0 {
		t.Fatal("published registry has version 0")
	}
	// Registry-backed corpora stamp their version; see core.jobFaultKey.
	cc := &core.CuratedCorpus{Vocab: reg.Vocab(), Version: reg.Version()}
	if cc.Version != 1 {
		t.Fatalf("corpus version = %d, want 1", cc.Version)
	}
}

// TestStatsOfRoundTrip pins that the cached per-script stats reconstructed
// from a snapshot equal the stats computed from the raw source — the
// property the lazy load's refold check builds on.
func TestStatsOfRoundTrip(t *testing.T) {
	src := testSource(3)
	parsed := script.MustParse(src)
	g := dag.Build(parsed)
	stats := entropy.StatsOf(g, 2)
	if len(stats.LineKeys) != len(g.Lines) {
		t.Fatalf("LineKeys %d, graph lines %d", len(stats.LineKeys), len(g.Lines))
	}
	lineInfos := make([]dag.LineInfo, len(g.Lines))
	copy(lineInfos, g.Lines)
	edges := dag.EdgeKeysOf(lineInfos)
	if len(edges) != len(stats.EdgeKeys) {
		t.Fatalf("EdgeKeysOf %d, stats %d", len(edges), len(stats.EdgeKeys))
	}
	for i := range edges {
		if edges[i] != stats.EdgeKeys[i] {
			t.Fatalf("edge %d: %q vs %q", i, edges[i], stats.EdgeKeys[i])
		}
	}
}
