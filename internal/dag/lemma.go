// Package dag converts LSL scripts into the paper's DAG representation:
// lemmatized line-level atoms (n-gram atoms), operation-invocation atoms
// (1-gram atoms), and data-flow edges between atoms. The edge multiset is
// the sample space over which script standardness (relative entropy) is
// computed, and the per-atom read/write sets let the search framework
// recompute edges cheaply after each candidate transformation.
package dag

import (
	"fmt"
	"sort"

	"lucidscript/internal/script"
)

// Canonical module aliases applied during lemmatization.
const (
	pandasAlias = "pd"
	numpyAlias  = "np"
)

// frameMethods are DataFrame-returning methods: assigning their result to a
// fresh variable keeps the canonical frame name (train = train.fillna(...)
// lemmatizes to df = df.fillna(...)).
var frameMethods = map[string]bool{
	"fillna": true, "dropna": true, "drop": true, "sample": true,
	"head": true, "sort_values": true, "copy": true, "reset_index": true,
	"rename": true, "drop_duplicates": true,
}

// conventionalNames are variable names with established meaning in data
// science scripts; they are never unified into a frame's canonical name
// (X = df.drop("target", axis=1) must stay X, not become df).
var conventionalNames = map[string]bool{
	"X": true, "y": true, "X_train": true, "X_test": true,
	"y_train": true, "y_test": true, "features": true, "labels": true,
	"train_X": true, "train_y": true, "test_X": true, "test_y": true,
}

// IsConventionalName reports whether the variable name carries established
// data-science meaning (target/feature split variables).
func IsConventionalName(name string) bool { return conventionalNames[name] }

// Lemmatize rewrites a script into canonical form: module aliases become
// pd/np, the first variable read from each distinct CSV file becomes df,
// df2, ..., and variables holding transformed versions of a canonical frame
// adopt the frame's name. The input script is not modified.
func Lemmatize(s *script.Script) *script.Script {
	ren := map[string]string{}
	fileToName := map[string]string{}
	out := &script.Script{}
	for _, st := range s.Stmts {
		switch v := st.(type) {
		case *script.ImportStmt:
			alias := v.Alias
			if alias == "" {
				alias = v.Module
			}
			switch v.Module {
			case "pandas":
				ren[alias] = pandasAlias
				out.Stmts = append(out.Stmts, &script.ImportStmt{Module: "pandas", Alias: pandasAlias})
				continue
			case "numpy":
				ren[alias] = numpyAlias
				out.Stmts = append(out.Stmts, &script.ImportStmt{Module: "numpy", Alias: numpyAlias})
				continue
			}
			out.Stmts = append(out.Stmts, v)
			continue
		case *script.AssignStmt:
			// Rename uses in the value first, then decide the target name.
			val := renameExpr(v.Value, ren)
			tgt := v.Target
			if id, ok := tgt.(*script.Ident); ok {
				if file, ok := readCSVFile(val); ok {
					canon, seen := fileToName[file]
					if !seen {
						canon = frameName(len(fileToName))
						fileToName[file] = canon
					}
					ren[id.Name] = canon
					out.Stmts = append(out.Stmts, &script.AssignStmt{Target: &script.Ident{Name: canon}, Value: val})
					continue
				}
				if canon, ok := frameAlias(val, ren); ok && ren[id.Name] == "" && id.Name != canon && !conventionalNames[id.Name] {
					// data = df.dropna()  →  df = df.dropna()
					ren[id.Name] = canon
					out.Stmts = append(out.Stmts, &script.AssignStmt{Target: &script.Ident{Name: canon}, Value: val})
					continue
				}
			}
			out.Stmts = append(out.Stmts, &script.AssignStmt{Target: renameExpr(tgt, ren), Value: val})
			continue
		case *script.ExprStmt:
			out.Stmts = append(out.Stmts, &script.ExprStmt{X: renameExpr(v.X, ren)})
			continue
		default:
			out.Stmts = append(out.Stmts, st)
		}
	}
	return out
}

func frameName(i int) string {
	if i == 0 {
		return "df"
	}
	return fmt.Sprintf("df%d", i+1)
}

// readCSVFile reports the file argument when expr is pd.read_csv("file").
func readCSVFile(e script.Expr) (string, bool) {
	call, ok := e.(*script.CallExpr)
	if !ok {
		return "", false
	}
	attr, ok := call.Fn.(*script.AttrExpr)
	if !ok || attr.Attr != "read_csv" {
		return "", false
	}
	if id, ok := attr.X.(*script.Ident); !ok || id.Name != pandasAlias {
		return "", false
	}
	if len(call.Args) == 0 {
		return "", false
	}
	lit, ok := call.Args[0].(*script.StringLit)
	if !ok {
		return "", false
	}
	return lit.Value, true
}

// frameAlias reports the canonical frame variable when expr is a
// frame-returning transformation of one (df.dropna(), df[mask],
// pd.get_dummies(df)).
func frameAlias(e script.Expr, ren map[string]string) (string, bool) {
	base, ok := baseVar(e)
	if !ok {
		return "", false
	}
	if !isFrameVar(base) {
		return "", false
	}
	switch v := e.(type) {
	case *script.CallExpr:
		if attr, ok := v.Fn.(*script.AttrExpr); ok && frameMethods[attr.Attr] {
			return base, true
		}
		// pd.get_dummies(df)
		if attr, ok := v.Fn.(*script.AttrExpr); ok && attr.Attr == "get_dummies" {
			if len(v.Args) == 1 {
				if inner, ok := baseVar(v.Args[0]); ok && isFrameVar(inner) {
					return inner, true
				}
			}
		}
	case *script.IndexExpr:
		// df[mask] or df[[...]] but not df["col"] (that is a Series).
		switch v.Index.(type) {
		case *script.StringLit:
			return "", false
		default:
			return base, true
		}
	}
	return "", false
}

func isFrameVar(name string) bool {
	if name == "df" {
		return true
	}
	if len(name) > 2 && name[:2] == "df" {
		for _, c := range name[2:] {
			if c < '0' || c > '9' {
				return false
			}
		}
		return true
	}
	return false
}

// baseVar returns the leftmost identifier of an expression chain.
func baseVar(e script.Expr) (string, bool) {
	switch v := e.(type) {
	case *script.Ident:
		return v.Name, true
	case *script.AttrExpr:
		return baseVar(v.X)
	case *script.IndexExpr:
		return baseVar(v.X)
	case *script.CallExpr:
		if attr, ok := v.Fn.(*script.AttrExpr); ok {
			if b, ok := baseVar(attr.X); ok {
				if b == pandasAlias || b == numpyAlias {
					// Module call: the data base is the first argument.
					if len(v.Args) > 0 {
						return baseVar(v.Args[0])
					}
					return b, true
				}
				return b, true
			}
		}
		return baseVar(v.Fn)
	}
	return "", false
}

// renameExpr deep-copies an expression, applying the variable rename map.
func renameExpr(e script.Expr, ren map[string]string) script.Expr {
	switch v := e.(type) {
	case *script.Ident:
		if nn, ok := ren[v.Name]; ok {
			return &script.Ident{Name: nn}
		}
		return &script.Ident{Name: v.Name}
	case *script.NumberLit:
		c := *v
		return &c
	case *script.StringLit:
		c := *v
		return &c
	case *script.BoolLit:
		c := *v
		return &c
	case *script.NoneLit:
		return &script.NoneLit{}
	case *script.AttrExpr:
		return &script.AttrExpr{X: renameExpr(v.X, ren), Attr: v.Attr}
	case *script.CallExpr:
		c := &script.CallExpr{Fn: renameExpr(v.Fn, ren)}
		for _, a := range v.Args {
			c.Args = append(c.Args, renameExpr(a, ren))
		}
		for _, k := range v.Kwargs {
			c.Kwargs = append(c.Kwargs, script.Kwarg{Name: k.Name, Value: renameExpr(k.Value, ren)})
		}
		return c
	case *script.IndexExpr:
		return &script.IndexExpr{X: renameExpr(v.X, ren), Index: renameExpr(v.Index, ren)}
	case *script.SliceExpr:
		c := &script.SliceExpr{}
		for _, p := range v.Parts {
			c.Parts = append(c.Parts, renameExpr(p, ren))
		}
		return c
	case *script.ListExpr:
		c := &script.ListExpr{}
		for _, el := range v.Elems {
			c.Elems = append(c.Elems, renameExpr(el, ren))
		}
		return c
	case *script.DictExpr:
		c := &script.DictExpr{}
		for i := range v.Keys {
			c.Keys = append(c.Keys, renameExpr(v.Keys[i], ren))
			c.Values = append(c.Values, renameExpr(v.Values[i], ren))
		}
		return c
	case *script.BinaryExpr:
		return &script.BinaryExpr{Op: v.Op, X: renameExpr(v.X, ren), Y: renameExpr(v.Y, ren)}
	case *script.UnaryExpr:
		return &script.UnaryExpr{Op: v.Op, X: renameExpr(v.X, ren)}
	}
	return e
}

// readsWrites returns the variable names a statement reads and writes.
func readsWrites(st script.Stmt) (reads, writes []string) {
	rset := map[string]bool{}
	wset := map[string]bool{}
	switch v := st.(type) {
	case *script.ImportStmt:
		alias := v.Alias
		if alias == "" {
			alias = v.Module
		}
		wset[alias] = true
	case *script.AssignStmt:
		script.Walk(v.Value, func(e script.Expr) {
			if id, ok := e.(*script.Ident); ok {
				rset[id.Name] = true
			}
		})
		switch tgt := v.Target.(type) {
		case *script.Ident:
			wset[tgt.Name] = true
		default:
			// df["c"] = ... both reads and writes the base variable.
			if b, ok := baseVar(v.Target); ok {
				rset[b] = true
				wset[b] = true
			}
			script.Walk(tgt, func(e script.Expr) {
				if id, ok := e.(*script.Ident); ok {
					rset[id.Name] = true
				}
			})
		}
	case *script.ExprStmt:
		script.Walk(v.X, func(e script.Expr) {
			if id, ok := e.(*script.Ident); ok {
				rset[id.Name] = true
			}
		})
	}
	for k := range rset {
		reads = append(reads, k)
	}
	for k := range wset {
		writes = append(writes, k)
	}
	sort.Strings(reads)
	sort.Strings(writes)
	return reads, writes
}
