package dag

import (
	"strings"
	"testing"

	"lucidscript/internal/script"
)

func TestLemmatizeRenamesReadCSVVar(t *testing.T) {
	s := script.MustParse(`import pandas
train = pandas.read_csv("train.csv")
train = train.fillna(train.mean())
`)
	lem := Lemmatize(s)
	src := lem.Source()
	if !strings.Contains(src, "import pandas as pd") {
		t.Fatalf("module alias not canonical:\n%s", src)
	}
	if !strings.Contains(src, `df = pd.read_csv("train.csv")`) {
		t.Fatalf("read_csv var not renamed:\n%s", src)
	}
	if !strings.Contains(src, "df = df.fillna(df.mean())") {
		t.Fatalf("uses not renamed:\n%s", src)
	}
	if strings.Contains(src, "train") && !strings.Contains(src, "train.csv") {
		t.Fatalf("old name leaked:\n%s", src)
	}
}

func TestLemmatizeTwoFiles(t *testing.T) {
	s := script.MustParse(`import pandas as pd
a = pd.read_csv("a.csv")
b = pd.read_csv("b.csv")
a = a.dropna()
b = b.dropna()
`)
	src := Lemmatize(s).Source()
	if !strings.Contains(src, `df = pd.read_csv("a.csv")`) || !strings.Contains(src, `df2 = pd.read_csv("b.csv")`) {
		t.Fatalf("two-file canonical names wrong:\n%s", src)
	}
	if !strings.Contains(src, "df2 = df2.dropna()") {
		t.Fatalf("df2 chain broken:\n%s", src)
	}
}

func TestLemmatizeSameFileSameName(t *testing.T) {
	a := script.MustParse("import pandas as pd\nfoo = pd.read_csv(\"x.csv\")\nfoo = foo.dropna()\n")
	b := script.MustParse("import pandas as pd\nbar = pd.read_csv(\"x.csv\")\nbar = bar.dropna()\n")
	if Lemmatize(a).Source() != Lemmatize(b).Source() {
		t.Fatal("semantically identical scripts should lemmatize identically")
	}
}

func TestLemmatizeFrameAlias(t *testing.T) {
	s := script.MustParse(`import pandas as pd
df = pd.read_csv("x.csv")
data = df.dropna()
data = data.fillna(0)
`)
	src := Lemmatize(s).Source()
	if strings.Contains(src, "data") {
		t.Fatalf("frame alias not unified:\n%s", src)
	}
}

func TestLemmatizeKeepsXY(t *testing.T) {
	s := script.MustParse(`import pandas as pd
df = pd.read_csv("x.csv")
y = df["target"]
X = df.drop("target", axis=1)
`)
	src := Lemmatize(s).Source()
	if !strings.Contains(src, `y = df["target"]`) {
		t.Fatalf("y renamed:\n%s", src)
	}
	if !strings.Contains(src, `X = df.drop("target", axis=1)`) {
		t.Fatalf("conventional X must not be unified into df:\n%s", src)
	}
	lem2 := Lemmatize(script.MustParse(s.Source())).Source()
	if src != lem2 {
		t.Fatal("lemmatization not deterministic")
	}
}

func TestBuildGraphEdges(t *testing.T) {
	s := script.MustParse(`import pandas as pd
df = pd.read_csv("diabetes.csv")
df = df.fillna(df.mean())
df = pd.get_dummies(df)
`)
	g := Build(s)
	if len(g.Lines) != 4 {
		t.Fatalf("lines = %d", len(g.Lines))
	}
	// Edges: import→read_csv (pd), read_csv→fillna (df),
	// fillna→get_dummies (df), import→get_dummies (pd).
	if len(g.Edges) != 4 {
		t.Fatalf("edges = %d: %v", len(g.Edges), g.Edges)
	}
	found := false
	for _, e := range g.Edges {
		if e.From == `df = pd.read_csv("diabetes.csv")` && e.To == "df = df.fillna(df.mean())" {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing read_csv→fillna edge: %v", g.Edges)
	}
}

func TestEdgeNearestWriter(t *testing.T) {
	s := script.MustParse(`import pandas as pd
df = pd.read_csv("x.csv")
df = df.dropna()
df = df.fillna(0)
`)
	g := Build(s)
	// fillna must link to dropna (nearest writer), not read_csv.
	for _, e := range g.Edges {
		if e.To == "df = df.fillna(0)" && strings.Contains(e.From, "read_csv") {
			t.Fatalf("edge skipped nearest writer: %v", g.Edges)
		}
	}
}

func TestUnigramAtoms(t *testing.T) {
	st, err := script.ParseStmt(`df = df[df["Age"].between(18, 25)]`)
	if err != nil {
		t.Fatal(err)
	}
	atoms := UnigramAtoms(st)
	want := map[string]bool{
		`df["Age"]`:         true,
		`_.between(18, 25)`: true,
		`df[_]`:             true,
	}
	if len(atoms) != len(want) {
		t.Fatalf("atoms = %v", atoms)
	}
	for _, a := range atoms {
		if !want[a] {
			t.Fatalf("unexpected atom %q in %v", a, atoms)
		}
	}
}

func TestUnigramAtomKeepsLiterals(t *testing.T) {
	st, _ := script.ParseStmt(`df = df[df["SkinThickness"] < 80]`)
	atoms := UnigramAtoms(st)
	joined := strings.Join(atoms, ";")
	if !strings.Contains(joined, "80") {
		t.Fatalf("literal lost: %v", atoms)
	}
}

func TestLineInfoReadsWrites(t *testing.T) {
	st, _ := script.ParseStmt(`df["Age"] = df["Age"].fillna(df["Age"].mean())`)
	li := NewLineInfo(st)
	if len(li.Reads) != 1 || li.Reads[0] != "df" {
		t.Fatalf("reads = %v", li.Reads)
	}
	if len(li.Writes) != 1 || li.Writes[0] != "df" {
		t.Fatalf("writes = %v", li.Writes)
	}
	imp, _ := script.ParseStmt("import pandas as pd")
	li2 := NewLineInfo(imp)
	if len(li2.Writes) != 1 || li2.Writes[0] != "pd" {
		t.Fatalf("import writes = %v", li2.Writes)
	}
}

func TestToScriptRoundTrip(t *testing.T) {
	s := script.MustParse(`import pandas as pd
df = pd.read_csv("x.csv")
df = df.dropna()
`)
	g := Build(s)
	back := ToScript(g.Lines)
	if back.Source() != g.Script.Source() {
		t.Fatalf("ToScript mismatch:\n%s\n%s", back.Source(), g.Script.Source())
	}
}

func TestEdgeKeyFormat(t *testing.T) {
	e := Edge{From: "a", To: "b"}
	if e.Key() != "a -> b" {
		t.Fatalf("key = %q", e.Key())
	}
}

func TestEdgesOfEmptyAndSingle(t *testing.T) {
	if got := EdgesOf(nil); len(got) != 0 {
		t.Fatal("edges of empty")
	}
	st, _ := script.ParseStmt("import pandas as pd")
	if got := EdgesOf([]LineInfo{NewLineInfo(st)}); len(got) != 0 {
		t.Fatal("single import has no edges")
	}
}

func TestGraphUnigramsAcrossScript(t *testing.T) {
	s := script.MustParse(`import pandas as pd
df = pd.read_csv("x.csv")
df = df.fillna(df.mean())
`)
	g := Build(s)
	if len(g.Unigrams) < 3 {
		t.Fatalf("unigrams = %v", g.Unigrams)
	}
}

func TestEdgeDedupWithinLine(t *testing.T) {
	// A line reading df twice produces one edge from the writer.
	s := script.MustParse(`import pandas as pd
df = pd.read_csv("x.csv")
df = df[df["a"] > 1]
`)
	g := Build(s)
	n := 0
	for _, e := range g.Edges {
		if e.To == `df = df[df["a"] > 1]` && strings.Contains(e.From, "read_csv") {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("duplicate edges: %v", g.Edges)
	}
}
