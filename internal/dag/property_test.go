package dag

import (
	"testing"
	"testing/quick"

	"lucidscript/internal/script"
)

// statement pool for random straight-line scripts.
var stmtPool = []string{
	`df = df.fillna(df.mean())`,
	`df = df.fillna(df.median())`,
	`df = df.dropna()`,
	`df = df[df["Age"] < 80]`,
	`df = df[df["SkinThickness"] < 80]`,
	`df["Sex"] = df["Sex"].map({"male": 0, "female": 1})`,
	`df = pd.get_dummies(df)`,
	`y = df["Outcome"]`,
	`X = df.drop("Outcome", axis=1)`,
	`df["FamilySize"] = df["SibSp"] + df["Parch"] + 1`,
}

func randomScript(pick []uint8) *script.Script {
	src := "import pandas as pd\ndf = pd.read_csv(\"data.csv\")\n"
	for _, p := range pick {
		src += stmtPool[int(p)%len(stmtPool)] + "\n"
	}
	return script.MustParse(src)
}

// Property: lemmatization is idempotent.
func TestLemmatizeIdempotentProperty(t *testing.T) {
	f := func(pick []uint8) bool {
		s := randomScript(pick)
		once := Lemmatize(s)
		twice := Lemmatize(once)
		return once.Source() == twice.Source()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the DAG has at most one edge per (read variable, line) pair, so
// the edge count is bounded by the total number of reads.
func TestEdgeCountBoundProperty(t *testing.T) {
	f := func(pick []uint8) bool {
		g := Build(randomScript(pick))
		reads := 0
		for _, li := range g.Lines {
			reads += len(li.Reads)
		}
		return len(g.Edges) <= reads
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ToScript(Build(s).Lines) round-trips the lemmatized source.
func TestDagRoundTripProperty(t *testing.T) {
	f := func(pick []uint8) bool {
		s := randomScript(pick)
		g := Build(s)
		return ToScript(g.Lines).Source() == g.Script.Source()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: every edge's endpoints are line atoms of the graph.
func TestEdgeEndpointsExistProperty(t *testing.T) {
	f := func(pick []uint8) bool {
		g := Build(randomScript(pick))
		keys := map[string]bool{}
		for _, li := range g.Lines {
			keys[li.Key] = true
		}
		for _, e := range g.Edges {
			if !keys[e.From] || !keys[e.To] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
