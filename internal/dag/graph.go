package dag

import (
	"strings"

	"lucidscript/internal/script"
)

// LineInfo is a line-level (n-gram) atom: one lemmatized statement together
// with its canonical key and the variables it reads and writes.
type LineInfo struct {
	Key    string // canonical lemmatized source — the atom identity
	Stmt   script.Stmt
	Reads  []string
	Writes []string
}

// Edge is a data-flow edge between two line atoms: To reads a variable that
// From was the most recent writer of.
type Edge struct {
	From, To string // atom keys
}

// Key renders the edge as a single vocabulary key.
func (e Edge) Key() string { return e.From + " -> " + e.To }

// Graph is the DAG representation of one script.
type Graph struct {
	// Script is the lemmatized script the graph was built from.
	Script *script.Script
	// Lines holds one line atom per statement, in order.
	Lines []LineInfo
	// Edges holds the data-flow edges (a multiset).
	Edges []Edge
	// Unigrams holds all operation-invocation (1-gram) atom keys, flattened
	// across statements.
	Unigrams []string
}

// Build lemmatizes the script and constructs its DAG.
func Build(s *script.Script) *Graph {
	lem := Lemmatize(s)
	g := &Graph{Script: lem}
	for _, st := range lem.Stmts {
		g.Lines = append(g.Lines, NewLineInfo(st))
		g.Unigrams = append(g.Unigrams, UnigramAtoms(st)...)
	}
	g.Edges = EdgesOf(g.Lines)
	return g
}

// NewLineInfo builds the line atom for a single (already lemmatized) statement.
func NewLineInfo(st script.Stmt) LineInfo {
	r, w := readsWrites(st)
	return LineInfo{Key: st.Source(), Stmt: st, Reads: r, Writes: w}
}

// EdgesOf derives the data-flow edges of an ordered line-atom sequence:
// for every variable a line reads, an edge is added from the nearest earlier
// line that writes that variable. This is the paper's E′, the sample space
// of the standardness measure.
func EdgesOf(lines []LineInfo) []Edge {
	lastWriter := map[string]int{}
	var edges []Edge
	for i, li := range lines {
		seen := map[int]bool{}
		for _, r := range li.Reads {
			if w, ok := lastWriter[r]; ok && !seen[w] {
				seen[w] = true
				edges = append(edges, Edge{From: lines[w].Key, To: li.Key})
			}
		}
		for _, w := range li.Writes {
			lastWriter[w] = i
		}
	}
	return edges
}

// EdgeKeysOf renders EdgesOf as vocabulary keys.
func EdgeKeysOf(lines []LineInfo) []string {
	edges := EdgesOf(lines)
	keys := make([]string, len(edges))
	for i, e := range edges {
		keys[i] = e.Key()
	}
	return keys
}

// ToScript reassembles a script from a line-atom sequence.
func ToScript(lines []LineInfo) *script.Script {
	s := &script.Script{}
	for _, li := range lines {
		s.Stmts = append(s.Stmts, li.Stmt)
	}
	return s
}

// UnigramAtoms extracts the operation-invocation (1-gram) atoms of a
// statement: every call and subscript, rendered with nested invocations
// abstracted to "_" so an atom is exactly one invocation node plus its
// non-invocation parents (Definition 3.1).
func UnigramAtoms(st script.Stmt) []string {
	var atoms []string
	collect := func(e script.Expr) {
		switch v := e.(type) {
		case *script.CallExpr:
			atoms = append(atoms, renderInvocation(v))
		case *script.IndexExpr:
			atoms = append(atoms, renderSubscript(v))
		}
	}
	script.WalkStmt(st, collect)
	return atoms
}

// abstractOperand renders a call/subscript argument, replacing nested
// invocations with "_".
func abstractOperand(e script.Expr) string {
	switch v := e.(type) {
	case *script.CallExpr, *script.IndexExpr:
		return "_"
	case *script.BinaryExpr:
		return abstractOperand(v.X) + " " + v.Op + " " + abstractOperand(v.Y)
	case *script.UnaryExpr:
		return v.Op + abstractOperand(v.X)
	case *script.AttrExpr:
		return abstractOperand(v.X) + "." + v.Attr
	case *script.ListExpr:
		parts := make([]string, len(v.Elems))
		for i, el := range v.Elems {
			parts[i] = abstractOperand(el)
		}
		return "[" + strings.Join(parts, ", ") + "]"
	default:
		return e.Source()
	}
}

func renderInvocation(c *script.CallExpr) string {
	var b strings.Builder
	b.WriteString(abstractOperand2(c.Fn))
	b.WriteByte('(')
	parts := make([]string, 0, len(c.Args)+len(c.Kwargs))
	for _, a := range c.Args {
		parts = append(parts, abstractOperand(a))
	}
	for _, k := range c.Kwargs {
		parts = append(parts, k.Name+"="+abstractOperand(k.Value))
	}
	b.WriteString(strings.Join(parts, ", "))
	b.WriteByte(')')
	return b.String()
}

func renderSubscript(ix *script.IndexExpr) string {
	return abstractOperand2(ix.X) + "[" + abstractOperand(ix.Index) + "]"
}

// abstractOperand2 renders the function/receiver part of an invocation:
// attribute chains are kept, but a nested invocation receiver is abstracted.
func abstractOperand2(e script.Expr) string {
	switch v := e.(type) {
	case *script.AttrExpr:
		return abstractOperand2(v.X) + "." + v.Attr
	case *script.CallExpr, *script.IndexExpr:
		return "_"
	default:
		return e.Source()
	}
}
