package dag

import (
	"strings"
	"testing"

	"lucidscript/internal/script"
)

func TestRenameExprCoversAllNodes(t *testing.T) {
	// A statement touching every expression node type round-trips through
	// lemmatization with the variable renamed everywhere.
	s := script.MustParse(`import pandas as pd
import numpy as np
data = pd.read_csv("x.csv")
data["m"] = data["c"].map({"a": 1, "b": -2})
data = data[(data["x"] > 0) & (~(data["y"] == "s"))]
data = data[["x", "y"]]
data.loc[data["x"] > 1, "z"] = 0
data["w"] = np.where(data["x"] > 1, True, False)
`)
	lem := Lemmatize(s).Source()
	if strings.Contains(lem, "data") {
		t.Fatalf("variable not renamed everywhere:\n%s", lem)
	}
	if !strings.Contains(lem, `df.loc[df["x"] > 1, "z"] = 0`) {
		t.Fatalf("loc target not renamed:\n%s", lem)
	}
}

func TestLemmatizeNumpyAlias(t *testing.T) {
	s := script.MustParse("import numpy\nimport pandas as pd\ndf = pd.read_csv(\"x.csv\")\ndf[\"a\"] = numpy.log1p(df[\"a\"])\n")
	lem := Lemmatize(s).Source()
	if !strings.Contains(lem, "import numpy as np") || !strings.Contains(lem, "np.log1p") {
		t.Fatalf("numpy alias not canonical:\n%s", lem)
	}
}

func TestLemmatizeOtherImportPassThrough(t *testing.T) {
	s := script.MustParse("import sklearn.preprocessing\nimport pandas as pd\ndf = pd.read_csv(\"x.csv\")\n")
	lem := Lemmatize(s).Source()
	if !strings.Contains(lem, "import sklearn.preprocessing") {
		t.Fatalf("non-pandas import dropped:\n%s", lem)
	}
}

func TestLemmatizeExprStmtAndLocChain(t *testing.T) {
	s := script.MustParse(`import pandas as pd
train = pd.read_csv("x.csv")
train["Outcome"]
update = train.sample(20).index
train.loc[update, "d"] = 0
`)
	lem := Lemmatize(s).Source()
	if !strings.Contains(lem, `df["Outcome"]`) || !strings.Contains(lem, `df.loc[update, "d"] = 0`) {
		t.Fatalf("expr/loc not renamed:\n%s", lem)
	}
	// `update` holds an index, not a frame: it keeps its name.
	if !strings.Contains(lem, "update = df.sample(20).index") {
		t.Fatalf("index variable mangled:\n%s", lem)
	}
}

func TestLemmatizeGetDummiesAlias(t *testing.T) {
	s := script.MustParse(`import pandas as pd
df = pd.read_csv("x.csv")
encoded = pd.get_dummies(df)
encoded = encoded.dropna()
`)
	lem := Lemmatize(s).Source()
	if strings.Contains(lem, "encoded") {
		t.Fatalf("get_dummies alias not unified:\n%s", lem)
	}
}

func TestLemmatizeMaskIndexAlias(t *testing.T) {
	s := script.MustParse(`import pandas as pd
df = pd.read_csv("x.csv")
adults = df[df["Age"] > 18]
adults = adults.dropna()
`)
	lem := Lemmatize(s).Source()
	if strings.Contains(lem, "adults") {
		t.Fatalf("mask-filter alias not unified:\n%s", lem)
	}
}

func TestLemmatizeColumnAccessNotAliased(t *testing.T) {
	// s = df["col"] is a Series, not a frame: the variable keeps its name.
	s := script.MustParse(`import pandas as pd
df = pd.read_csv("x.csv")
ages = df["Age"]
`)
	lem := Lemmatize(s).Source()
	if !strings.Contains(lem, `ages = df["Age"]`) {
		t.Fatalf("series variable mangled:\n%s", lem)
	}
}

func TestIsConventionalName(t *testing.T) {
	for _, n := range []string{"X", "y", "X_train", "y_test", "labels"} {
		if !IsConventionalName(n) {
			t.Fatalf("%q should be conventional", n)
		}
	}
	if IsConventionalName("df") || IsConventionalName("update") {
		t.Fatal("non-split names should not be conventional")
	}
}

func TestUnigramAtomsOfLocAndDicts(t *testing.T) {
	st, err := script.ParseStmt(`df.loc[update, "c"] = 0`)
	if err != nil {
		t.Fatal(err)
	}
	atoms := UnigramAtoms(st)
	if len(atoms) == 0 {
		t.Fatalf("no atoms for loc statement")
	}
	st2, _ := script.ParseStmt(`df["m"] = df["c"].map({"a": 1})`)
	atoms2 := UnigramAtoms(st2)
	found := false
	for _, a := range atoms2 {
		if strings.Contains(a, "map") {
			found = true
		}
	}
	if !found {
		t.Fatalf("map invocation missing: %v", atoms2)
	}
}

func TestUnigramAbstractsNestedInvocations(t *testing.T) {
	st, _ := script.ParseStmt(`df["FareScaled"] = (df["Fare"] - df["Fare"].min()) / (df["Fare"].max() - df["Fare"].min())`)
	atoms := UnigramAtoms(st)
	for _, a := range atoms {
		if strings.Count(a, "min()") > 1 {
			t.Fatalf("nested invocations not abstracted: %q", a)
		}
	}
}
