module lucidscript

go 1.22
