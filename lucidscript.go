// Package lucidscript is a Go implementation of LucidScript, the bottom-up
// data-preparation script standardization system from "Toward Standardized
// Data Preparation: A Bottom-Up Approach" (EDBT 2025).
//
// Given a user's straight-line pandas-style script, a corpus of scripts
// that process the same dataset, and the dataset itself, Standardize
// searches for an executable variant of the user script that minimizes the
// relative entropy of its data-preparation-step distribution against the
// corpus while preserving the user's intent within a configurable
// threshold (table Jaccard similarity or downstream model accuracy).
//
// Quick start:
//
//	data, _ := lucidscript.ReadCSVFile("diabetes.csv")
//	corpus := []*lucidscript.Script{ ... }
//	sys, _ := lucidscript.NewSystem(corpus,
//		map[string]*lucidscript.Frame{"diabetes.csv": data},
//		lucidscript.Options{})
//	res, _ := sys.Standardize(userScript)
//	fmt.Print(res.Script.Source())
package lucidscript

import (
	"errors"
	"fmt"
	"io"
	"time"

	"lucidscript/internal/core"
	"lucidscript/internal/entropy"
	"lucidscript/internal/frame"
	"lucidscript/internal/intent"
	"lucidscript/internal/script"
)

// Script is a parsed LSL (pandas-style) data preparation script.
type Script = script.Script

// Frame is a loaded tabular dataset.
type Frame = frame.Frame

// ParseScript parses LSL source into a Script.
func ParseScript(src string) (*Script, error) { return script.Parse(src) }

// ReadCSV parses a CSV stream with type inference into a Frame.
func ReadCSV(r io.Reader) (*Frame, error) { return frame.ReadCSV(r) }

// ReadCSVFile loads a CSV file into a Frame.
func ReadCSVFile(path string) (*Frame, error) { return frame.ReadCSVFile(path) }

// IntentMeasure selects how user intent preservation is evaluated.
type IntentMeasure string

// The supported user-intent measures.
const (
	// IntentJaccard constrains the table Jaccard similarity (over distinct
	// cell values, the paper's Example 2.1) between the outputs of the
	// input and standardized scripts to be at least Tau.
	IntentJaccard IntentMeasure = "jaccard"
	// IntentModel constrains the relative downstream-model accuracy change
	// to at most Tau percent; requires TargetColumn.
	IntentModel IntentMeasure = "model"
	// IntentRowJaccard constrains the stricter row-multiset Jaccard ≥ Tau.
	IntentRowJaccard IntentMeasure = "row-jaccard"
	// IntentEMD constrains the normalized earth-mover distance between the
	// outputs' numeric column distributions to at most Tau (Section 8's
	// proposed additional measure).
	IntentEMD IntentMeasure = "emd"
	// IntentFairness constrains the change in the downstream model's
	// demographic-parity gap to at most Tau; requires TargetColumn and
	// ProtectedColumn (Section 8's fairness direction).
	IntentFairness IntentMeasure = "fairness"
)

// Options configures a System. The zero value selects the paper's default
// configuration (seq=16, K=3, diversity and early checking on, τ_J=0.9).
type Options struct {
	// SeqLength is the maximum number of transformations (default 16).
	SeqLength int
	// BeamSize is the beam width K (default 3).
	BeamSize int
	// DisableDiversity turns off K-means transformation diversity.
	DisableDiversity bool
	// LateCheck defers execution checking to the end of the search.
	LateCheck bool
	// Measure selects the intent measure (default IntentJaccard).
	Measure IntentMeasure
	// Tau is the intent threshold: minimum Jaccard in [0,1] (default 0.9)
	// or maximum model-accuracy change in percent (default 1).
	Tau float64
	// TargetColumn names the label column for IntentModel and IntentFairness.
	TargetColumn string
	// ProtectedColumn names the protected attribute for IntentFairness.
	ProtectedColumn string
	// Auto derives SeqLength and BeamSize from corpus statistics using the
	// paper's Table 2 instead of the defaults.
	Auto bool
	// Seed drives sampling determinism (default 1).
	Seed int64
	// MaxRows caps the rows used during execution checks (default 50000).
	MaxRows int
	// Weights optionally weights each corpus script (parallel to the corpus
	// slice) in the standardness distribution, e.g. by Kaggle vote counts.
	Weights []int
	// Workers > 1 extends search beams concurrently. Deterministic for a
	// fixed configuration; may differ slightly from the sequential search
	// (per-beam candidate de-duplication).
	Workers int
	// DisableExecCache turns off the execution-prefix cache that shares
	// interpreter work across beam-search candidates. Results are identical
	// either way; the cache only changes speed.
	DisableExecCache bool
}

// ErrEmptyCorpus is returned when no corpus scripts are supplied.
var ErrEmptyCorpus = errors.New("lucidscript: corpus is empty")

// ExecCacheStats reports the execution-prefix cache's effectiveness for
// one standardization (all zeros when the cache is disabled).
type ExecCacheStats struct {
	// Hits and Misses count per-statement prefix lookups.
	Hits, Misses int64
	// Evictions counts cache entries dropped to stay within the size bound.
	Evictions int64
	// StmtsExecuted and StmtsSkipped count interpreter statement
	// executions performed vs. avoided by prefix reuse.
	StmtsExecuted, StmtsSkipped int64
	// EstSavedTime extrapolates the execution time the cache avoided.
	EstSavedTime time.Duration
}

// Result reports one standardization.
type Result struct {
	// Script is the standardized output (the input when no admissible
	// improvement exists).
	Script *Script
	// REBefore and REAfter are the relative-entropy scores.
	REBefore, REAfter float64
	// ImprovementPct is (REBefore−REAfter)/REBefore × 100.
	ImprovementPct float64
	// IntentValue is the measured Δ_J or Δ_M of the accepted output.
	IntentValue float64
	// Transformations describes the applied edits, in order.
	Transformations []string
	// Explanations justifies each edit: corpus frequency, RE impact, and a
	// one-sentence rationale (parallel to Transformations).
	Explanations []string
	// ExecCache reports the execution-prefix cache's effectiveness.
	ExecCache ExecCacheStats
}

// System is a standardizer bound to one corpus and dataset; it is safe to
// reuse for many input scripts (the search space is curated once).
type System struct {
	std *core.Standardizer
}

// NewSystem curates the search space from the corpus and dataset.
func NewSystem(corpus []*Script, sources map[string]*Frame, opts Options) (*System, error) {
	if len(corpus) == 0 {
		return nil, ErrEmptyCorpus
	}
	cfg := core.DefaultConfig()
	if opts.SeqLength > 0 {
		cfg.SeqLength = opts.SeqLength
	}
	if opts.BeamSize > 0 {
		cfg.BeamSize = opts.BeamSize
	}
	cfg.Diversity = !opts.DisableDiversity
	cfg.EarlyCheck = !opts.LateCheck
	if opts.Seed != 0 {
		cfg.Seed = opts.Seed
	}
	if opts.MaxRows > 0 {
		cfg.MaxRows = opts.MaxRows
	}
	if opts.Workers > 0 {
		cfg.Workers = opts.Workers
	}
	cfg.ExecCache = !opts.DisableExecCache
	switch opts.Measure {
	case "", IntentJaccard:
		tau := opts.Tau
		if tau == 0 {
			tau = 0.9
		}
		cfg.Constraint = intent.Constraint{Measure: intent.MeasureJaccard, Tau: tau}
	case IntentRowJaccard:
		tau := opts.Tau
		if tau == 0 {
			tau = 0.9
		}
		cfg.Constraint = intent.Constraint{Measure: intent.MeasureRowJaccard, Tau: tau}
	case IntentEMD:
		tau := opts.Tau
		if tau == 0 {
			tau = 0.05
		}
		cfg.Constraint = intent.Constraint{Measure: intent.MeasureEMD, Tau: tau}
	case IntentModel:
		if opts.TargetColumn == "" {
			return nil, fmt.Errorf("lucidscript: IntentModel requires TargetColumn")
		}
		tau := opts.Tau
		if tau == 0 {
			tau = 1
		}
		cfg.Constraint = intent.Constraint{
			Measure: intent.MeasureModel,
			Tau:     tau,
			Model:   intent.ModelConfig{Target: opts.TargetColumn},
		}
	case IntentFairness:
		if opts.TargetColumn == "" || opts.ProtectedColumn == "" {
			return nil, fmt.Errorf("lucidscript: IntentFairness requires TargetColumn and ProtectedColumn")
		}
		tau := opts.Tau
		if tau == 0 {
			tau = 0.05
		}
		cfg.Constraint = intent.Constraint{
			Measure: intent.MeasureFairness,
			Tau:     tau,
			Model:   intent.ModelConfig{Target: opts.TargetColumn, Protected: opts.ProtectedColumn},
		}
	default:
		return nil, fmt.Errorf("lucidscript: unknown intent measure %q", opts.Measure)
	}
	std := core.NewWeighted(corpus, opts.Weights, sources, cfg)
	if opts.Auto {
		seq, k := core.AutoConfig(len(corpus), std.Vocab.NumUniqueEdges())
		std.Config.SeqLength, std.Config.BeamSize = seq, k
	}
	return &System{std: std}, nil
}

// Standardize returns the standardized version of the input script.
func (s *System) Standardize(input *Script) (*Result, error) {
	res, err := s.std.Standardize(input)
	if err != nil {
		return nil, err
	}
	out := &Result{
		Script:         res.Output,
		REBefore:       res.REBefore,
		REAfter:        res.REAfter,
		ImprovementPct: res.ImprovementPct,
		IntentValue:    res.IntentValue,
		ExecCache: ExecCacheStats{
			Hits:          res.CacheStats.Hits,
			Misses:        res.CacheStats.Misses,
			Evictions:     res.CacheStats.Evictions,
			StmtsExecuted: res.CacheStats.StmtsExecuted,
			StmtsSkipped:  res.CacheStats.StmtsSkipped,
			EstSavedTime:  res.CacheStats.EstSavedTime(),
		},
	}
	for _, tr := range res.Applied {
		out.Transformations = append(out.Transformations, tr.String())
	}
	for _, ex := range s.std.ExplainResult(res) {
		out.Explanations = append(out.Explanations, ex.String())
	}
	return out, nil
}

// ParetoPoint is one point of the intent-threshold / standardness
// trade-off curve.
type ParetoPoint struct {
	// Tau is the intent threshold explored.
	Tau float64
	// ImprovementPct is the standardness improvement achievable at Tau.
	ImprovementPct float64
	// IntentValue is the measured intent value of the accepted output.
	IntentValue float64
}

// ParetoFrontier explores several intent thresholds with a single beam
// search, returning the achievable improvement at each (Section 8's
// proposed configuration-exploration extension). Thresholds follow the
// system's configured measure.
func (s *System) ParetoFrontier(input *Script, taus []float64) ([]ParetoPoint, error) {
	pts, err := s.std.ParetoFrontier(input, taus)
	if err != nil {
		return nil, err
	}
	out := make([]ParetoPoint, len(pts))
	for i, p := range pts {
		out[i] = ParetoPoint{Tau: p.Tau, ImprovementPct: p.ImprovementPct, IntentValue: p.IntentValue}
	}
	return out, nil
}

// CorpusStats summarizes the curated search space.
type CorpusStats struct {
	Scripts        int
	UniqueUnigrams int
	UniqueNgrams   int
	UniqueEdges    int
}

// Stats returns the corpus statistics used by Table 3 and AutoConfig.
func (s *System) Stats() CorpusStats {
	v := s.std.Vocab
	return CorpusStats{
		Scripts:        v.NumScripts,
		UniqueUnigrams: v.NumUniqueUnigrams(),
		UniqueNgrams:   v.NumUniqueLines(),
		UniqueEdges:    v.NumUniqueEdges(),
	}
}

// SaveSearchSpace serializes the curated search space (the offline phase's
// output: atom/edge vocabularies, corpus distribution, atom positions) so a
// later session can LoadSystem without re-curating the corpus.
func (s *System) SaveSearchSpace(w io.Writer) error {
	return s.std.Vocab.Encode(w)
}

// LoadSystem rebuilds a System from a search space written by
// SaveSearchSpace plus the input dataset. Options are applied as in
// NewSystem (the corpus itself is not needed again).
func LoadSystem(r io.Reader, sources map[string]*Frame, opts Options) (*System, error) {
	vocab, err := entropy.DecodeVocab(r)
	if err != nil {
		return nil, err
	}
	// Build an empty system shell, then install the decoded vocabulary.
	placeholder, err := ParseScript("import pandas as pd")
	if err != nil {
		return nil, err
	}
	sys, err := NewSystem([]*Script{placeholder}, sources, opts)
	if err != nil {
		return nil, err
	}
	sys.std.Vocab = vocab
	if opts.Auto {
		seq, k := core.AutoConfig(vocab.NumScripts, vocab.NumUniqueEdges())
		sys.std.Config.SeqLength, sys.std.Config.BeamSize = seq, k
	}
	return sys, nil
}

// Anomaly flags one out-of-the-ordinary step of a script.
type Anomaly struct {
	// Line is the 1-based position in the lemmatized script.
	Line int
	// Source is the canonical step text.
	Source string
	// CorpusFrequency is the fraction of corpus scripts using the step.
	CorpusFrequency float64
	// REGain is the standardness gain from removing just this step.
	REGain float64
}

// DetectAnomalies lists the script's steps used by fewer than maxFrequency
// of corpus scripts (0 selects the default 0.1), ordered by the standardness
// gain their removal would yield — the read-only "identify anomalous data
// preparation steps" usage of Section 6.6.
func (s *System) DetectAnomalies(sc *Script, maxFrequency float64) []Anomaly {
	var out []Anomaly
	for _, a := range s.std.DetectAnomalies(sc, maxFrequency) {
		out = append(out, Anomaly{
			Line:            a.Line,
			Source:          a.Source,
			CorpusFrequency: a.CorpusFrequency,
			REGain:          a.REGain,
		})
	}
	return out
}

// AnomalyReport renders DetectAnomalies as a human-readable block.
func (s *System) AnomalyReport(sc *Script, maxFrequency float64) string {
	return s.std.AnomalyReport(sc, maxFrequency)
}

// RE computes the standardness (relative entropy) of a script against this
// system's corpus. Lower is more standard.
func (s *System) RE(sc *Script) float64 {
	return s.std.Vocab.RE(buildGraph(sc))
}

// Improvement returns the paper's % improvement between two RE values.
func Improvement(before, after float64) float64 {
	return entropy.Improvement(before, after)
}
