// Package lucidscript is a Go implementation of LucidScript, the bottom-up
// data-preparation script standardization system from "Toward Standardized
// Data Preparation: A Bottom-Up Approach" (EDBT 2025).
//
// Given a user's straight-line pandas-style script, a corpus of scripts
// that process the same dataset, and the dataset itself, Standardize
// searches for an executable variant of the user script that minimizes the
// relative entropy of its data-preparation-step distribution against the
// corpus while preserving the user's intent within a configurable
// threshold (table Jaccard similarity or downstream model accuracy).
//
// Quick start:
//
//	data, _ := lucidscript.ReadCSVFile("diabetes.csv")
//	corpus := []*lucidscript.Script{ ... }
//	sys, _ := lucidscript.NewSystem(corpus,
//		map[string]*lucidscript.Frame{"diabetes.csv": data},
//		lucidscript.Options{})
//	res, _ := sys.Standardize(userScript)
//	fmt.Print(res.Script.Source())
package lucidscript

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"time"

	"lucidscript/internal/core"
	"lucidscript/internal/entropy"
	"lucidscript/internal/faults"
	"lucidscript/internal/frame"
	"lucidscript/internal/intent"
	"lucidscript/internal/interp"
	"lucidscript/internal/obs"
	"lucidscript/internal/registry"
	"lucidscript/internal/script"
)

// Script is a parsed LSL (pandas-style) data preparation script.
type Script = script.Script

// Frame is a loaded tabular dataset.
type Frame = frame.Frame

// ParseScript parses LSL source into a Script.
func ParseScript(src string) (*Script, error) { return script.Parse(src) }

// ReadCSV parses a CSV stream with type inference into a Frame.
func ReadCSV(r io.Reader) (*Frame, error) { return frame.ReadCSV(r) }

// ReadCSVFile loads a CSV file into a Frame.
func ReadCSVFile(path string) (*Frame, error) { return frame.ReadCSVFile(path) }

// ExecLimits bounds the resources any single candidate execution may
// consume: cells, rows, columns, and string bytes of any materialized value,
// plus statements per run. A zero field is unlimited; a nil *ExecLimits
// disables the governor entirely (the default — candidate execution is then
// only bounded by Options.Timeout). A candidate that trips a budget is
// quarantined, not fatal: the search completes without it and reports the
// trip in Result.Health.
type ExecLimits = interp.Limits

// DefaultExecLimits returns budgets generous enough for every workload in
// the paper's evaluation while stopping runaway candidates (get_dummies
// column explosions, self-join row blowups, unbounded string concatenation)
// long before they exhaust process memory.
func DefaultExecLimits() *ExecLimits { return interp.DefaultLimits() }

// FaultInjector is the deterministic, seeded chaos-injection hook from the
// fault-containment layer (PR 4), re-exported so service-level stress
// tests can arm faults through Options.Faults. Whether a given injection
// site fires is a pure function of (seed, rule, site, key) — independent
// of timing and goroutine interleaving — so chaos runs are reproducible
// under the race detector.
type FaultInjector = faults.Injector

// StatementError pinpoints the statement at which a governed execution
// failed: its 1-based line, its source text, and the underlying cause.
// Reach it with errors.As on any error returned by the standardization
// entry points.
type StatementError = interp.StmtError

// Health reports how much containment one standardization needed —
// candidates quarantined for contained panics or resource-budget trips
// (per phase), corpus scripts skipped during curation, and whether any
// verification degraded to sampled-tuple mode. The zero value is a fully
// healthy run; see Result.Health.
type Health = core.Health

// PhaseHealth tallies candidate quarantines in one search phase.
type PhaseHealth = core.PhaseHealth

// IntentMeasure selects how user intent preservation is evaluated.
type IntentMeasure string

// The supported user-intent measures.
const (
	// IntentJaccard constrains the table Jaccard similarity (over distinct
	// cell values, the paper's Example 2.1) between the outputs of the
	// input and standardized scripts to be at least Tau.
	IntentJaccard IntentMeasure = "jaccard"
	// IntentModel constrains the relative downstream-model accuracy change
	// to at most Tau percent; requires TargetColumn.
	IntentModel IntentMeasure = "model"
	// IntentRowJaccard constrains the stricter row-multiset Jaccard ≥ Tau.
	IntentRowJaccard IntentMeasure = "row-jaccard"
	// IntentEMD constrains the normalized earth-mover distance between the
	// outputs' numeric column distributions to at most Tau (Section 8's
	// proposed additional measure).
	IntentEMD IntentMeasure = "emd"
	// IntentFairness constrains the change in the downstream model's
	// demographic-parity gap to at most Tau; requires TargetColumn and
	// ProtectedColumn (Section 8's fairness direction).
	IntentFairness IntentMeasure = "fairness"
)

// TauZero requests a literal zero intent threshold. In Options, Tau = 0 is
// the zero value and resolves to the measure's default (see Options.Tau);
// TauZero makes an explicit zero expressible — e.g. an unconstrained
// Jaccard search, or a zero-tolerance model-accuracy constraint.
const TauZero float64 = -1

// Options configures a System. The zero value selects the paper's default
// configuration (seq=16, K=3, diversity and early checking on, τ_J=0.9):
// every zero-valued field resolves to the default documented on it, and
// DefaultOptions returns those resolved values explicitly. Use Validate to
// check a configuration without building a System.
type Options struct {
	// SeqLength is the maximum number of transformations. 0 resolves to
	// the default 16.
	SeqLength int
	// BeamSize is the beam width K. 0 resolves to the default 3.
	BeamSize int
	// DisableDiversity turns off K-means transformation diversity.
	DisableDiversity bool
	// LateCheck defers execution checking to the end of the search.
	LateCheck bool
	// Measure selects the intent measure. "" resolves to IntentJaccard.
	Measure IntentMeasure
	// Tau is the intent threshold: minimum Jaccard in [0,1], maximum
	// model-accuracy change in percent, maximum EMD, or maximum fairness
	// gap change, per Measure. 0 resolves to the measure's default (0.9
	// Jaccard/row-Jaccard, 1% model, 0.05 EMD/fairness); use TauZero to
	// request a literal zero threshold.
	Tau float64
	// TargetColumn names the label column for IntentModel and IntentFairness.
	TargetColumn string
	// ProtectedColumn names the protected attribute for IntentFairness.
	ProtectedColumn string
	// Auto derives SeqLength and BeamSize from corpus statistics using the
	// paper's Table 2 instead of the defaults.
	Auto bool
	// Seed drives sampling determinism. 0 resolves to the default 1.
	Seed int64
	// MaxRows caps the rows used during execution checks. 0 resolves to
	// the default 50000; a negative value disables sampling entirely.
	MaxRows int
	// Weights optionally weights each corpus script (parallel to the corpus
	// slice) in the standardness distribution, e.g. by Kaggle vote counts.
	Weights []int
	// Workers > 1 extends search beams concurrently. 0 resolves to the
	// default 1 (sequential). Deterministic for a fixed configuration; may
	// differ slightly from the sequential search (per-beam candidate
	// de-duplication).
	Workers int
	// BatchWorkers bounds StandardizeBatch's worker pool — how many jobs
	// standardize concurrently. 0 resolves to runtime.GOMAXPROCS(0). It is
	// independent of Workers, which parallelizes the beam search inside
	// each job.
	BatchWorkers int
	// DisableExecCache turns off the execution-prefix cache that shares
	// interpreter work across beam-search candidates. Results are identical
	// either way; the cache only changes speed.
	DisableExecCache bool
	// Timeout bounds each Standardize/ParetoFrontier call; 0 means no
	// limit. An expired timeout aborts the search mid-candidate and
	// returns ErrDeadlineExceeded alongside a partial Result.
	Timeout time.Duration
	// Tracer receives structured search events (phase timings, beam
	// extensions, candidate executions/prunings, verification passes,
	// cache traffic). Nil disables tracing with zero overhead.
	// Implementations must be safe for concurrent use when Workers > 1.
	Tracer Tracer
	// Metrics, when non-nil, accumulates counters (statements executed,
	// cache hits, beams pruned, verifications, per-phase wall clock)
	// across every call on the System. Use NewMetrics for a private
	// registry or DefaultMetrics for the process-wide expvar-published one.
	Metrics *Metrics
	// ExecLimits, when non-nil, installs the per-execution resource
	// governor: candidates whose execution would exceed a budget are
	// quarantined (reported in Result.Health) instead of exhausting the
	// process. Nil — the default — disables the governor with zero
	// overhead; DefaultExecLimits returns the recommended budgets.
	ExecLimits *ExecLimits
	// Faults, when non-nil, arms the deterministic chaos-injection hook at
	// every site the pipeline exposes (interpreter statements, cache steps,
	// curation, batch/queue jobs). It exists for service-level chaos and
	// stress tests — production callers leave it nil, which reduces every
	// injection site to a single pointer check.
	Faults *FaultInjector
}

// DefaultOptions returns the paper's default configuration with every
// derived field resolved to its explicit value, so callers can tweak one
// knob without re-deriving the rest.
func DefaultOptions() Options {
	return Options{
		SeqLength:    16,
		BeamSize:     3,
		Measure:      IntentJaccard,
		Tau:          0.9,
		Seed:         1,
		MaxRows:      50000,
		Workers:      1,
		BatchWorkers: runtime.GOMAXPROCS(0),
	}
}

// defaultTau is the per-measure intent-threshold default.
func defaultTau(m IntentMeasure) float64 {
	switch m {
	case IntentModel:
		return 1
	case IntentEMD, IntentFairness:
		return 0.05
	default:
		return 0.9
	}
}

// resolved returns the options with every zero-valued field replaced by
// its documented default and TauZero mapped to a literal 0.
func (o Options) resolved() Options {
	def := DefaultOptions()
	if o.SeqLength == 0 {
		o.SeqLength = def.SeqLength
	}
	if o.BeamSize == 0 {
		o.BeamSize = def.BeamSize
	}
	if o.Measure == "" {
		o.Measure = IntentJaccard
	}
	switch o.Tau {
	case TauZero:
		o.Tau = 0
	case 0:
		o.Tau = defaultTau(o.Measure)
	}
	if o.Seed == 0 {
		o.Seed = def.Seed
	}
	switch {
	case o.MaxRows == 0:
		o.MaxRows = def.MaxRows
	case o.MaxRows < 0:
		o.MaxRows = 0 // core interprets 0 as "no sampling"
	}
	if o.Workers == 0 {
		o.Workers = def.Workers
	}
	if o.BatchWorkers == 0 {
		o.BatchWorkers = def.BatchWorkers
	}
	return o
}

// Validate reports whether the options describe a buildable configuration,
// returning a typed error (ErrUnknownMeasure, ErrMissingTargetColumn,
// ErrMissingProtectedColumn, ErrInvalidThreshold) that works with
// errors.Is. Zero-valued fields are valid — they resolve to defaults.
func (o Options) Validate() error {
	switch o.Measure {
	case "", IntentJaccard, IntentRowJaccard, IntentEMD:
	case IntentModel:
		if o.TargetColumn == "" {
			return fmt.Errorf("%w: IntentModel requires TargetColumn", ErrMissingTargetColumn)
		}
	case IntentFairness:
		if o.TargetColumn == "" {
			return fmt.Errorf("%w: IntentFairness requires TargetColumn", ErrMissingTargetColumn)
		}
		if o.ProtectedColumn == "" {
			return fmt.Errorf("%w: IntentFairness requires ProtectedColumn", ErrMissingProtectedColumn)
		}
	default:
		return fmt.Errorf("%w: %q", ErrUnknownMeasure, o.Measure)
	}
	if o.Tau < 0 && o.Tau != TauZero {
		return fmt.Errorf("%w: Tau = %v (negative thresholds are only expressible as TauZero)", ErrInvalidThreshold, o.Tau)
	}
	switch o.Measure {
	case "", IntentJaccard, IntentRowJaccard:
		if o.Tau > 1 {
			return fmt.Errorf("%w: Jaccard Tau = %v exceeds 1", ErrInvalidThreshold, o.Tau)
		}
	}
	if o.SeqLength < 0 || o.BeamSize < 0 || o.Workers < 0 || o.BatchWorkers < 0 {
		return fmt.Errorf("%w: SeqLength/BeamSize/Workers/BatchWorkers must not be negative", ErrInvalidThreshold)
	}
	if o.Timeout < 0 {
		return fmt.Errorf("%w: Timeout must not be negative", ErrInvalidThreshold)
	}
	return nil
}

// constraint maps resolved options onto the core intent constraint.
// Call only on resolved() options.
func (o Options) constraint() intent.Constraint {
	switch o.Measure {
	case IntentRowJaccard:
		return intent.Constraint{Measure: intent.MeasureRowJaccard, Tau: o.Tau}
	case IntentEMD:
		return intent.Constraint{Measure: intent.MeasureEMD, Tau: o.Tau}
	case IntentModel:
		return intent.Constraint{
			Measure: intent.MeasureModel,
			Tau:     o.Tau,
			Model:   intent.ModelConfig{Target: o.TargetColumn},
		}
	case IntentFairness:
		return intent.Constraint{
			Measure: intent.MeasureFairness,
			Tau:     o.Tau,
			Model:   intent.ModelConfig{Target: o.TargetColumn, Protected: o.ProtectedColumn},
		}
	default:
		return intent.Constraint{Measure: intent.MeasureJaccard, Tau: o.Tau}
	}
}

// The typed errors returned by NewSystem, LoadSystem, Validate, and the
// standardization entry points; all work with errors.Is. ErrCanceled and
// ErrDeadlineExceeded additionally match context.Canceled and
// context.DeadlineExceeded respectively.
var (
	// ErrEmptyCorpus is returned when no corpus scripts are supplied.
	ErrEmptyCorpus = errors.New("lucidscript: corpus is empty")
	// ErrMissingTargetColumn is returned when a model-based measure lacks
	// Options.TargetColumn.
	ErrMissingTargetColumn = errors.New("lucidscript: missing target column")
	// ErrMissingProtectedColumn is returned when IntentFairness lacks
	// Options.ProtectedColumn.
	ErrMissingProtectedColumn = errors.New("lucidscript: missing protected column")
	// ErrUnknownMeasure is returned for an unrecognized Options.Measure.
	ErrUnknownMeasure = errors.New("lucidscript: unknown intent measure")
	// ErrInvalidThreshold is returned for an out-of-range Tau or other
	// out-of-range numeric option.
	ErrInvalidThreshold = errors.New("lucidscript: invalid option value")
	// ErrCanceled reports a standardization stopped by context
	// cancellation; a partial Result accompanies it.
	ErrCanceled = core.ErrCanceled
	// ErrDeadlineExceeded reports a standardization stopped by a context
	// deadline or Options.Timeout; a partial Result accompanies it.
	ErrDeadlineExceeded = core.ErrDeadlineExceeded
	// ErrJobPanicked reports that one StandardizeBatch job panicked; the
	// panic is contained to that job's entry in BatchError.
	ErrJobPanicked = core.ErrJobPanicked
	// ErrResourceExhausted reports an execution stopped by an ExecLimits
	// budget. Standardization never returns it for a candidate — budget
	// trips quarantine the candidate and surface in Result.Health — so
	// seeing it from Standardize means the input script itself exceeded a
	// budget (wrapped in ErrInputScriptFails).
	ErrResourceExhausted = interp.ErrResourceExhausted
	// ErrStatementPanicked reports a statement whose execution panicked and
	// was contained at statement granularity. Like ErrResourceExhausted it
	// only escapes to the caller when the input script itself panics.
	ErrStatementPanicked = interp.ErrStatementPanicked
	// ErrInputScriptFails reports that the user's input script failed to
	// execute; the cause (including any *StatementError) is in the chain.
	ErrInputScriptFails = core.ErrInputScriptFails
)

// Tracer receives structured search events during standardization. See
// Options.Tracer; NewWriterTracer and NewCollectTracer are the built-in
// implementations. Implementations must be safe for concurrent use.
type Tracer = obs.Tracer

// TraceEvent is one structured search event: what happened (Kind), when on
// the monotonic clock (Elapsed), in which phase, and the event's payload.
type TraceEvent = obs.Event

// TraceEventKind identifies a TraceEvent's type.
type TraceEventKind = obs.EventKind

// The trace event kinds, re-exported for event filtering.
const (
	TraceCurateDone        = obs.EvCurateDone
	TraceSearchStart       = obs.EvSearchStart
	TraceCandidateExecuted = obs.EvCandidateExecuted
	TraceCandidatePruned   = obs.EvCandidatePruned
	TraceBeamExtended      = obs.EvBeamExtended
	TraceStepDone          = obs.EvStepDone
	TraceCacheReport       = obs.EvCacheReport
	TraceVerifyStart       = obs.EvVerifyStart
	TraceVerifyPass        = obs.EvVerifyPass
	TraceVerifyDone        = obs.EvVerifyDone
	TraceSearchDone        = obs.EvSearchDone
	TraceCanceled          = obs.EvCanceled
	// TraceCandidateQuarantined reports a candidate dropped for a contained
	// panic or a resource-budget trip (Detail is "panic" or "exhausted").
	TraceCandidateQuarantined = obs.EvCandidateQuarantined
	// TraceVerifyDegraded reports a verification that fell back to
	// sampled-tuple mode after a budget trip (N is the sample size).
	TraceVerifyDegraded = obs.EvVerifyDegraded
	// TraceCurateSkipped reports a corpus script skipped during curation.
	TraceCurateSkipped = obs.EvCurateSkipped
)

// NewWriterTracer returns a tracer that writes one line per event to w,
// serialized by an internal mutex (suitable for stderr progress streams).
func NewWriterTracer(w io.Writer) Tracer { return obs.NewWriterTracer(w) }

// CollectTracer accumulates events in memory for programmatic inspection.
type CollectTracer = obs.CollectTracer

// NewCollectTracer returns an empty in-memory tracer.
func NewCollectTracer() *CollectTracer { return obs.NewCollectTracer() }

// Metrics is an atomic registry of cumulative counters maintained by the
// search (see Options.Metrics). Dump it with WritePrometheus or expose it
// on the expvar page with Publish.
type Metrics = obs.Metrics

// NewMetrics returns an empty private metrics registry.
func NewMetrics() *Metrics { return obs.NewMetrics() }

// DefaultMetrics returns the process-wide registry, published via expvar
// under "lucidscript" on first use.
func DefaultMetrics() *Metrics { return obs.Default() }

// The metric names maintained by the search, re-exported for
// Metrics.Value lookups. Prometheus dumps prefix each with "lucidscript_".
const (
	MetricStatementsExecuted = obs.MStatementsExecuted
	MetricStatementsSkipped  = obs.MStatementsSkipped
	MetricCacheHits          = obs.MCacheHits
	MetricCacheMisses        = obs.MCacheMisses
	MetricCacheEvictions     = obs.MCacheEvictions
	MetricExecChecks         = obs.MExecChecks
	MetricCandidatesAdmitted = obs.MCandidatesAdmitted
	MetricCandidatesPruned   = obs.MCandidatesPruned
	MetricBeamsPruned        = obs.MBeamsPruned
	MetricVerifications      = obs.MVerifications
	MetricSearches           = obs.MSearches
	MetricSearchesCanceled   = obs.MSearchesCanceled

	// Fault-isolation counters: quarantined candidates (with their panic /
	// budget-trip split), degraded verifications, and curation skips.
	MetricCandidatesQuarantined = obs.MCandidatesQuarantined
	MetricStatementPanics       = obs.MStatementPanics
	MetricBudgetExhaustions     = obs.MBudgetExhaustions
	MetricVerifyDegraded        = obs.MVerifyDegraded
	MetricCurateSkipped         = obs.MCurateSkipped
)

// Timings is the per-phase wall-clock breakdown of one standardization
// (the paper's Figure 7 decomposition). In parallel searches the
// per-phase entries accumulate CPU time across workers, so their sum can
// exceed Total.
type Timings struct {
	// CurateSearchSpace is the offline corpus-curation time (paid once per
	// System and reported on every Result).
	CurateSearchSpace time.Duration
	// GetSteps ranks candidate transformations.
	GetSteps time.Duration
	// GetTopKBeams extends and selects beams.
	GetTopKBeams time.Duration
	// CheckIfExecutes verifies the execution constraint.
	CheckIfExecutes time.Duration
	// VerifyConstraints verifies the user-intent constraint.
	VerifyConstraints time.Duration
	// Total is the end-to-end wall clock of the call.
	Total time.Duration
}

// ExecCacheStats reports the execution-prefix cache's effectiveness for
// one standardization (all zeros when the cache is disabled).
type ExecCacheStats struct {
	// Hits and Misses count per-statement prefix lookups.
	Hits, Misses int64
	// Evictions counts cache entries dropped to stay within the size bound.
	Evictions int64
	// StmtsExecuted and StmtsSkipped count interpreter statement
	// executions performed vs. avoided by prefix reuse.
	StmtsExecuted, StmtsSkipped int64
	// EstSavedTime extrapolates the execution time the cache avoided.
	EstSavedTime time.Duration
}

// Result reports one standardization.
type Result struct {
	// Script is the standardized output (the input when no admissible
	// improvement exists).
	Script *Script
	// REBefore and REAfter are the relative-entropy scores.
	REBefore, REAfter float64
	// ImprovementPct is (REBefore−REAfter)/REBefore × 100.
	ImprovementPct float64
	// IntentValue is the measured Δ_J or Δ_M of the accepted output.
	IntentValue float64
	// Transformations describes the applied edits, in order.
	Transformations []string
	// Explanations justifies each edit: corpus frequency, RE impact, and a
	// one-sentence rationale (parallel to Transformations).
	Explanations []string
	// ExecCache reports the execution-prefix cache's effectiveness.
	ExecCache ExecCacheStats
	// Timings is the per-phase runtime breakdown of this standardization.
	Timings Timings
	// Health reports the containment this run needed: candidates
	// quarantined for contained panics or ExecLimits budget trips, corpus
	// scripts skipped during curation, and whether verification degraded
	// to sampled-tuple mode. The zero value is a fully healthy run; a
	// non-zero Health is informational — the output equals what the same
	// search would produce without the quarantined candidates.
	Health Health
}

// System is a standardizer bound to one corpus and dataset; it is safe to
// reuse for many input scripts (the search space is curated once).
type System struct {
	std          *core.Standardizer
	timeout      time.Duration
	batchWorkers int
}

// NewSystem curates the search space from the corpus and dataset. Options
// are validated first (see Options.Validate for the typed errors) and
// zero-valued fields resolve to the documented defaults.
func NewSystem(corpus []*Script, sources map[string]*Frame, opts Options) (*System, error) {
	if len(corpus) == 0 {
		return nil, ErrEmptyCorpus
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.resolved()
	cfg := core.DefaultConfig()
	cfg.SeqLength = opts.SeqLength
	cfg.BeamSize = opts.BeamSize
	cfg.Diversity = !opts.DisableDiversity
	cfg.EarlyCheck = !opts.LateCheck
	cfg.Seed = opts.Seed
	cfg.MaxRows = opts.MaxRows
	cfg.Workers = opts.Workers
	cfg.ExecCache = !opts.DisableExecCache
	cfg.Tracer = opts.Tracer
	cfg.Metrics = opts.Metrics
	cfg.Limits = opts.ExecLimits
	cfg.Faults = opts.Faults
	cfg.Constraint = opts.constraint()
	std := core.NewWeighted(corpus, opts.Weights, sources, cfg)
	if opts.Auto {
		seq, k := core.AutoConfig(len(corpus), std.Corpus.Vocab.NumUniqueEdges())
		std.Config.SeqLength, std.Config.BeamSize = seq, k
	}
	return &System{std: std, timeout: opts.Timeout, batchWorkers: opts.BatchWorkers}, nil
}

// Standardize returns the standardized version of the input script. It is
// StandardizeContext with a background context; Options.Timeout still
// applies.
func (s *System) Standardize(input *Script) (*Result, error) {
	return s.StandardizeContext(context.Background(), input)
}

// StandardizeContext standardizes the input under a context. Cancellation
// is honored at statement granularity inside the interpreter and between
// beam extensions, so a deadline aborts mid-candidate; Options.Timeout,
// when set, bounds the call on top of ctx. On cancellation it returns
// ErrCanceled or ErrDeadlineExceeded (matching the equivalent context
// errors under errors.Is) together with a partial, non-nil Result — the
// best verified candidate found so far, the input script if verification
// had not begun, or nil if the input itself never finished executing.
func (s *System) StandardizeContext(ctx context.Context, input *Script) (*Result, error) {
	ctx, cancel := s.searchContext(ctx)
	defer cancel()
	res, err := s.std.StandardizeContext(ctx, input)
	if res == nil {
		return nil, err
	}
	return s.toResult(res), err
}

// BatchError aggregates per-job failures from StandardizeBatch. Errs is
// index-aligned with the submitted jobs: Errs[i] is nil when job i
// succeeded. errors.Is/As see every per-job error through Unwrap.
type BatchError struct {
	// Errs holds one entry per job, nil for jobs that succeeded.
	Errs []error
}

// Error summarizes how many jobs failed and quotes the first failure.
func (e *BatchError) Error() string {
	failed, total := 0, len(e.Errs)
	var first error
	for _, err := range e.Errs {
		if err != nil {
			if first == nil {
				first = err
			}
			failed++
		}
	}
	if first == nil {
		return fmt.Sprintf("lucidscript: batch of %d jobs failed", total)
	}
	return fmt.Sprintf("lucidscript: %d of %d jobs failed (first: %v)", failed, total, first)
}

// Unwrap exposes the non-nil per-job errors to errors.Is and errors.As.
func (e *BatchError) Unwrap() []error {
	var errs []error
	for _, err := range e.Errs {
		if err != nil {
			errs = append(errs, err)
		}
	}
	return errs
}

// StandardizeBatch standardizes every job concurrently over one shared
// curated corpus and one shared execution-prefix cache, using a worker pool
// of Options.BatchWorkers goroutines. It is StandardizeBatchContext with a
// background context.
func (s *System) StandardizeBatch(jobs []*Script) ([]*Result, error) {
	return s.StandardizeBatchContext(context.Background(), jobs)
}

// StandardizeBatchContext is StandardizeBatch under a context. Results are
// index-aligned with jobs and deterministic: each job's output is
// byte-identical to a sequential Standardize of the same script. Failures
// are per-job — an execution error, an Options.Timeout expiry
// (ErrDeadlineExceeded, applied to each job individually), or even a panic
// (ErrJobPanicked) in one job leaves the others untouched; the failed job's
// Result is its partial result or nil. Canceling ctx stops the whole batch.
// When any job fails the returned error is a *BatchError whose Errs slice
// is parallel to jobs.
func (s *System) StandardizeBatchContext(ctx context.Context, jobs []*Script) ([]*Result, error) {
	eng := core.NewEngine(s.std, s.batchWorkers, s.timeout)
	coreRes, coreErrs := eng.StandardizeBatch(ctx, jobs)
	results := make([]*Result, len(jobs))
	failed := false
	for i, cr := range coreRes {
		if cr != nil {
			results[i] = s.toResult(cr)
		}
		if coreErrs[i] != nil {
			failed = true
		}
	}
	if failed {
		return results, &BatchError{Errs: coreErrs}
	}
	return results, nil
}

// searchContext applies Options.Timeout to the caller's context.
func (s *System) searchContext(ctx context.Context) (context.Context, context.CancelFunc) {
	if s.timeout > 0 {
		return context.WithTimeout(ctx, s.timeout)
	}
	return ctx, func() {}
}

// toResult converts a core result into the public shape.
func (s *System) toResult(res *core.Result) *Result {
	out := &Result{
		Script:         res.Output,
		REBefore:       res.REBefore,
		REAfter:        res.REAfter,
		ImprovementPct: res.ImprovementPct,
		IntentValue:    res.IntentValue,
		ExecCache: ExecCacheStats{
			Hits:          res.CacheStats.Hits,
			Misses:        res.CacheStats.Misses,
			Evictions:     res.CacheStats.Evictions,
			StmtsExecuted: res.CacheStats.StmtsExecuted,
			StmtsSkipped:  res.CacheStats.StmtsSkipped,
			EstSavedTime:  res.CacheStats.EstSavedTime(),
		},
		Timings: Timings{
			CurateSearchSpace: res.Timings.CurateSearchSpace,
			GetSteps:          res.Timings.GetSteps,
			GetTopKBeams:      res.Timings.GetTopKBeams,
			CheckIfExecutes:   res.Timings.CheckIfExecutes,
			VerifyConstraints: res.Timings.VerifyConstraints,
			Total:             res.Timings.Total,
		},
		Health: res.Health,
	}
	for _, tr := range res.Applied {
		out.Transformations = append(out.Transformations, tr.String())
	}
	for _, ex := range s.std.ExplainResult(res) {
		out.Explanations = append(out.Explanations, ex.String())
	}
	return out
}

// ParetoPoint is one point of the intent-threshold / standardness
// trade-off curve.
type ParetoPoint struct {
	// Tau is the intent threshold explored.
	Tau float64
	// ImprovementPct is the standardness improvement achievable at Tau.
	ImprovementPct float64
	// IntentValue is the measured intent value of the accepted output.
	IntentValue float64
}

// ParetoFrontier explores several intent thresholds with a single beam
// search, returning the achievable improvement at each (Section 8's
// proposed configuration-exploration extension). Thresholds follow the
// system's configured measure.
func (s *System) ParetoFrontier(input *Script, taus []float64) ([]ParetoPoint, error) {
	return s.ParetoFrontierContext(context.Background(), input, taus)
}

// ParetoFrontierContext is ParetoFrontier with cancellation. Unlike
// StandardizeContext it returns no points on cancellation — a partially
// explored trade-off curve would be misleading — so the error (ErrCanceled
// or ErrDeadlineExceeded) comes back alone. Options.Timeout applies here
// too.
func (s *System) ParetoFrontierContext(ctx context.Context, input *Script, taus []float64) ([]ParetoPoint, error) {
	ctx, cancel := s.searchContext(ctx)
	defer cancel()
	pts, err := s.std.ParetoFrontierContext(ctx, input, taus)
	if err != nil {
		return nil, err
	}
	out := make([]ParetoPoint, len(pts))
	for i, p := range pts {
		out[i] = ParetoPoint{Tau: p.Tau, ImprovementPct: p.ImprovementPct, IntentValue: p.IntentValue}
	}
	return out, nil
}

// CorpusStats summarizes the curated search space.
type CorpusStats struct {
	Scripts        int
	UniqueUnigrams int
	UniqueNgrams   int
	UniqueEdges    int
}

// CurateDiagnostic records one corpus script that curation skipped instead
// of letting its failure abort NewSystem; Err wraps the contained cause.
type CurateDiagnostic = core.CurateDiagnostic

// CurationDiagnostics lists the corpus scripts skipped while curating this
// System's search space. Empty on a healthy corpus.
func (s *System) CurationDiagnostics() []CurateDiagnostic {
	return s.std.Corpus.Diagnostics
}

// Stats returns the corpus statistics used by Table 3 and AutoConfig.
func (s *System) Stats() CorpusStats {
	v := s.std.Corpus.Vocab
	return CorpusStats{
		Scripts:        v.NumScripts,
		UniqueUnigrams: v.NumUniqueUnigrams(),
		UniqueNgrams:   v.NumUniqueLines(),
		UniqueEdges:    v.NumUniqueEdges(),
	}
}

// SaveSearchSpace serializes the curated search space (the offline phase's
// output: atom/edge vocabularies, corpus distribution, atom positions) so a
// later session can LoadSystem without re-curating the corpus.
func (s *System) SaveSearchSpace(w io.Writer) error {
	return s.std.Corpus.Vocab.Encode(w)
}

// LoadSystem rebuilds a System from a search space written by
// SaveSearchSpace plus the input dataset. Options are applied as in
// NewSystem (the corpus itself is not needed again).
func LoadSystem(r io.Reader, sources map[string]*Frame, opts Options) (*System, error) {
	vocab, err := entropy.DecodeVocab(r)
	if err != nil {
		return nil, err
	}
	// Build an empty system shell, then install the decoded vocabulary.
	placeholder, err := ParseScript("import pandas as pd")
	if err != nil {
		return nil, err
	}
	sys, err := NewSystem([]*Script{placeholder}, sources, opts)
	if err != nil {
		return nil, err
	}
	sys.std.Corpus.Vocab = vocab
	if opts.Auto {
		seq, k := core.AutoConfig(vocab.NumScripts, vocab.NumUniqueEdges())
		sys.std.Config.SeqLength, sys.std.Config.BeamSize = seq, k
	}
	return sys, nil
}

// NewSystemFromRegistry builds a System over a corpus registry snapshot
// plus the input dataset: the registry's already-folded search space is
// installed directly (curation is never re-run), and the snapshot's
// version is stamped onto the corpus so serving layers can report — and
// fault keys can include — exactly which corpus generation a job ran
// against. Options apply as in NewSystem. The registry's vocabulary is
// immutable, so the System stays valid even as the registry itself moves
// to newer versions.
func NewSystemFromRegistry(reg *registry.Registry, sources map[string]*Frame, opts Options) (*System, error) {
	vocab := reg.Vocab()
	placeholder, err := ParseScript("import pandas as pd")
	if err != nil {
		return nil, err
	}
	sys, err := NewSystem([]*Script{placeholder}, sources, opts)
	if err != nil {
		return nil, err
	}
	sys.std.Corpus.Vocab = vocab
	sys.std.Corpus.Version = reg.Version()
	if opts.Auto {
		seq, k := core.AutoConfig(vocab.NumScripts, vocab.NumUniqueEdges())
		sys.std.Config.SeqLength, sys.std.Config.BeamSize = seq, k
	}
	return sys, nil
}

// CorpusVersion reports the registry snapshot version this System's corpus
// came from, 0 when the corpus was curated in-process and never versioned.
func (s *System) CorpusVersion() int64 { return s.std.Corpus.Version }

// Anomaly flags one out-of-the-ordinary step of a script.
type Anomaly struct {
	// Line is the 1-based position in the lemmatized script.
	Line int
	// Source is the canonical step text.
	Source string
	// CorpusFrequency is the fraction of corpus scripts using the step.
	CorpusFrequency float64
	// REGain is the standardness gain from removing just this step.
	REGain float64
}

// DetectAnomalies lists the script's steps used by fewer than maxFrequency
// of corpus scripts (0 selects the default 0.1), ordered by the standardness
// gain their removal would yield — the read-only "identify anomalous data
// preparation steps" usage of Section 6.6.
func (s *System) DetectAnomalies(sc *Script, maxFrequency float64) []Anomaly {
	var out []Anomaly
	for _, a := range s.std.DetectAnomalies(sc, maxFrequency) {
		out = append(out, Anomaly{
			Line:            a.Line,
			Source:          a.Source,
			CorpusFrequency: a.CorpusFrequency,
			REGain:          a.REGain,
		})
	}
	return out
}

// AnomalyReport renders DetectAnomalies as a human-readable block.
func (s *System) AnomalyReport(sc *Script, maxFrequency float64) string {
	return s.std.AnomalyReport(sc, maxFrequency)
}

// RE computes the standardness (relative entropy) of a script against this
// system's corpus. Lower is more standard.
func (s *System) RE(sc *Script) float64 {
	return s.std.Corpus.Vocab.RE(buildGraph(sc))
}

// Improvement returns the paper's % improvement between two RE values.
func Improvement(before, after float64) float64 {
	return entropy.Improvement(before, after)
}
