package lucidscript

import (
	"lucidscript/internal/dag"
	"lucidscript/internal/script"
)

// buildGraph converts a script into its DAG representation.
func buildGraph(sc *script.Script) *dag.Graph { return dag.Build(sc) }

// Lemmatize returns the canonical (lemmatized) form of a script: module
// aliases become pd/np and dataframe variables adopt canonical names, so
// syntactically different but semantically equivalent scripts compare equal.
func Lemmatize(sc *Script) *Script { return dag.Lemmatize(sc) }
