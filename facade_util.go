package lucidscript

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"

	"lucidscript/internal/dag"
	"lucidscript/internal/script"
)

// buildGraph converts a script into its DAG representation.
func buildGraph(sc *script.Script) *dag.Graph { return dag.Build(sc) }

// Lemmatize returns the canonical (lemmatized) form of a script: module
// aliases become pd/np and dataframe variables adopt canonical names, so
// syntactically different but semantically equivalent scripts compare equal.
func Lemmatize(sc *Script) *Script { return dag.Lemmatize(sc) }

// ErrNoOutput reports that a script executed successfully but produced no
// output table, so there is nothing to hash.
var ErrNoOutput = errors.New("lucidscript: script produced no output table")

// OutputHash executes the script against the System's full (unsampled)
// sources and returns the SHA-256 hex digest of the output table's CSV
// serialization. Because the digest covers the materialized table — not
// the script text — it is the cheap way to confirm that two standardized
// scripts are output-equivalent: lsstd prints it, the HTTP service returns
// it per job, and the e2e tests compare the two.
func (s *System) OutputHash(sc *Script) (string, error) {
	return s.OutputHashContext(context.Background(), sc)
}

// OutputHashContext is OutputHash under a context (the execution honors
// cancellation at statement granularity).
func (s *System) OutputHashContext(ctx context.Context, sc *Script) (string, error) {
	out, err := s.std.RunOutput(ctx, sc)
	if err != nil {
		return "", err
	}
	if out == nil {
		return "", ErrNoOutput
	}
	h := sha256.New()
	if err := out.WriteCSV(h); err != nil {
		return "", fmt.Errorf("lucidscript: hashing output table: %w", err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
