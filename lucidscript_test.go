package lucidscript

import (
	"errors"
	"strings"
	"testing"
)

const testCSV = `Glucose,SkinThickness,Age,Outcome
148,35,50,1
85,29,31,0
183,,32,1
89,23,21,0
137,35,33,1
116,25,30,0
78,32,26,1
115,,29,0
197,45,53,1
125,96,54,1
110,37,30,0
168,15,34,1
139,90,57,0
189,23,59,1
166,19,51,1
100,47,32,1
`

const corpusScript = `import pandas as pd
df = pd.read_csv("diabetes.csv")
df = df.fillna(df.mean())
df = df[df["SkinThickness"] < 80]
df = pd.get_dummies(df)
y = df["Outcome"]
`

func newTestSystem(t *testing.T, opts Options) *System {
	t.Helper()
	data, err := ReadCSV(strings.NewReader(testCSV))
	if err != nil {
		t.Fatal(err)
	}
	var corpus []*Script
	for i := 0; i < 5; i++ {
		s, err := ParseScript(corpusScript)
		if err != nil {
			t.Fatal(err)
		}
		corpus = append(corpus, s)
	}
	sys, err := NewSystem(corpus, map[string]*Frame{"diabetes.csv": data}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(nil, nil, Options{}); !errors.Is(err, ErrEmptyCorpus) {
		t.Fatalf("err = %v", err)
	}
	data, _ := ReadCSV(strings.NewReader(testCSV))
	s, _ := ParseScript(corpusScript)
	if _, err := NewSystem([]*Script{s}, map[string]*Frame{"diabetes.csv": data},
		Options{Measure: IntentModel}); err == nil {
		t.Fatal("IntentModel without TargetColumn should error")
	}
	if _, err := NewSystem([]*Script{s}, map[string]*Frame{"diabetes.csv": data},
		Options{Measure: "bogus"}); err == nil {
		t.Fatal("unknown measure should error")
	}
}

func TestStandardizeViaFacade(t *testing.T) {
	sys := newTestSystem(t, Options{Tau: 0.5, SeqLength: 8})
	input, err := ParseScript(`import pandas as pd
df = pd.read_csv("diabetes.csv")
df = df.fillna(df.median())
df = pd.get_dummies(df)
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Standardize(input)
	if err != nil {
		t.Fatal(err)
	}
	if res.ImprovementPct <= 0 {
		t.Fatalf("improvement = %v", res.ImprovementPct)
	}
	if res.REAfter >= res.REBefore {
		t.Fatal("RE did not drop")
	}
	if len(res.Transformations) == 0 {
		t.Fatal("no transformations reported")
	}
	if res.Script == nil || res.Script.NumStmts() == 0 {
		t.Fatal("empty output script")
	}
}

func TestFacadeModelMeasure(t *testing.T) {
	sys := newTestSystem(t, Options{
		Measure:      IntentModel,
		Tau:          10,
		TargetColumn: "Outcome",
		SeqLength:    4,
	})
	input, _ := ParseScript(`import pandas as pd
df = pd.read_csv("diabetes.csv")
`)
	res, err := sys.Standardize(input)
	if err != nil {
		t.Fatal(err)
	}
	if res.ImprovementPct < 0 {
		t.Fatalf("improvement = %v", res.ImprovementPct)
	}
}

func TestFacadeAutoConfig(t *testing.T) {
	sys := newTestSystem(t, Options{Auto: true})
	stats := sys.Stats()
	if stats.Scripts != 5 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.UniqueEdges == 0 || stats.UniqueNgrams == 0 || stats.UniqueUnigrams == 0 {
		t.Fatalf("empty stats: %+v", stats)
	}
}

func TestFacadeRE(t *testing.T) {
	sys := newTestSystem(t, Options{})
	common, _ := ParseScript(corpusScript)
	rare, _ := ParseScript(`import pandas as pd
df = pd.read_csv("diabetes.csv")
df = df.fillna(df.median())
`)
	if sys.RE(common) >= sys.RE(rare) {
		t.Fatal("corpus script should be more standard than a rare one")
	}
}

func TestLemmatizeFacade(t *testing.T) {
	s, _ := ParseScript("import pandas\ntrain = pandas.read_csv(\"x.csv\")\ntrain = train.dropna()\n")
	lem := Lemmatize(s)
	if !strings.Contains(lem.Source(), "df = df.dropna()") {
		t.Fatalf("lemmatize = %q", lem.Source())
	}
}

func TestImprovementHelper(t *testing.T) {
	if Improvement(2, 1) != 50 {
		t.Fatal("Improvement")
	}
}

func TestFacadeInputFailure(t *testing.T) {
	sys := newTestSystem(t, Options{})
	bad, _ := ParseScript(`import pandas as pd
df = pd.read_csv("missing.csv")
`)
	if _, err := sys.Standardize(bad); err == nil {
		t.Fatal("missing source should error")
	}
}

func TestReadCSVFacade(t *testing.T) {
	f, err := ReadCSV(strings.NewReader("a,b\n1,2\n"))
	if err != nil || f.NumRows() != 1 {
		t.Fatalf("ReadCSV: %v", err)
	}
	if _, err := ReadCSVFile("/nonexistent/file.csv"); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestSaveLoadSearchSpace(t *testing.T) {
	sys := newTestSystem(t, Options{Tau: 0.5, SeqLength: 6})
	var buf strings.Builder
	if err := sys.SaveSearchSpace(&buf); err != nil {
		t.Fatal(err)
	}
	data, _ := ReadCSV(strings.NewReader(testCSV))
	loaded, err := LoadSystem(strings.NewReader(buf.String()),
		map[string]*Frame{"diabetes.csv": data}, Options{Tau: 0.5, SeqLength: 6})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Stats() != sys.Stats() {
		t.Fatalf("stats differ: %+v vs %+v", loaded.Stats(), sys.Stats())
	}
	input, _ := ParseScript(`import pandas as pd
df = pd.read_csv("diabetes.csv")
df = df.fillna(df.median())
`)
	a, err := sys.Standardize(input)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Standardize(input)
	if err != nil {
		t.Fatal(err)
	}
	if a.Script.Source() != b.Script.Source() {
		t.Fatalf("loaded system differs:\n%s\nvs\n%s", a.Script.Source(), b.Script.Source())
	}
	if _, err := LoadSystem(strings.NewReader("oops"), nil, Options{}); err == nil {
		t.Fatal("bad search space should error")
	}
}
