package lucidscript

// Benchmarks covering every table and figure of the paper's evaluation
// (via the drivers in internal/bench) plus micro-benchmarks of the core
// components. Run with:
//
//	go test -bench=. -benchmem
//
// Each BenchmarkTableN / BenchmarkFigN regenerates the corresponding
// artifact at a reduced scale; `go run ./cmd/lsbench -exp all` produces the
// full-size versions recorded in EXPERIMENTS.md.

import (
	"strings"
	"testing"

	"lucidscript/internal/bench"
	"lucidscript/internal/core"
	"lucidscript/internal/corpusgen"
	"lucidscript/internal/dag"
	"lucidscript/internal/entropy"
	"lucidscript/internal/interp"
	"lucidscript/internal/script"
)

// benchOpts is the reduced experiment scale used inside benchmarks.
func benchOpts() bench.Options {
	return bench.Options{
		Seed:              1,
		RowScale:          0.01,
		MinRows:           240,
		ScriptsPerDataset: 1,
		SeqLength:         6,
		Datasets:          []string{"Medical", "NLP"},
	}
}

func runExperiment(b *testing.B, id string, opts bench.Options) {
	b.Helper()
	e, err := bench.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2Parameterization(b *testing.B) { runExperiment(b, "table2", benchOpts()) }

func BenchmarkTable3CorpusStats(b *testing.B) { runExperiment(b, "table3", benchOpts()) }

func BenchmarkTable4CaseStudy(b *testing.B) { runExperiment(b, "table4", benchOpts()) }

func BenchmarkTable5Improvement(b *testing.B) { runExperiment(b, "table5", benchOpts()) }

func BenchmarkFig3UserStudy(b *testing.B) { runExperiment(b, "fig3", benchOpts()) }

func BenchmarkFig4Distribution(b *testing.B) { runExperiment(b, "fig4", benchOpts()) }

func BenchmarkFig5IntentSweep(b *testing.B) {
	opts := benchOpts()
	opts.Datasets = []string{"Medical"}
	runExperiment(b, "fig5", opts)
}

func BenchmarkFig6Ablation(b *testing.B) {
	opts := benchOpts()
	opts.Datasets = []string{"Medical"}
	runExperiment(b, "fig6", opts)
}

func BenchmarkFig7Runtime(b *testing.B) {
	opts := benchOpts()
	opts.Datasets = []string{"Medical"}
	runExperiment(b, "fig7", opts)
}

func BenchmarkFig9LeakageDetection(b *testing.B) {
	opts := benchOpts()
	opts.Datasets = []string{"Medical"}
	opts.ScriptsPerDataset = 2
	runExperiment(b, "fig9", opts)
}

// ---- component micro-benchmarks ----

func medicalFixture(b *testing.B) (*corpusgen.Generated, []*script.Script) {
	b.Helper()
	c, err := corpusgen.Get("Medical")
	if err != nil {
		b.Fatal(err)
	}
	gen, err := c.Generate(corpusgen.GenOptions{Seed: 1, RowScale: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	return gen, gen.ScriptsOnly()
}

func BenchmarkParseScript(b *testing.B) {
	src := `import pandas as pd
df = pd.read_csv("diabetes.csv")
df = df.fillna(df.mean())
df = df[df["SkinThickness"] < 80]
df["Scaled"] = (df["Glucose"] - df["Glucose"].min()) / (df["Glucose"].max() - df["Glucose"].min())
df = pd.get_dummies(df)
y = df["Outcome"]
X = df.drop("Outcome", axis=1)
`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := script.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildDAG(b *testing.B) {
	_, scripts := medicalFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dag.Build(scripts[i%len(scripts)])
	}
}

func BenchmarkBuildVocab(b *testing.B) {
	_, scripts := medicalFixture(b)
	graphs := make([]*dag.Graph, len(scripts))
	for i, s := range scripts {
		graphs[i] = dag.Build(s)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		entropy.BuildVocab(graphs)
	}
}

func BenchmarkRelativeEntropy(b *testing.B) {
	_, scripts := medicalFixture(b)
	graphs := make([]*dag.Graph, len(scripts))
	for i, s := range scripts {
		graphs[i] = dag.Build(s)
	}
	v := entropy.BuildVocab(graphs)
	g := graphs[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.RE(g)
	}
}

func BenchmarkInterpreterRun(b *testing.B) {
	gen, scripts := medicalFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := interp.Run(scripts[i%len(scripts)], gen.Sources, interp.Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStandardizeEndToEnd(b *testing.B) {
	gen, scripts := medicalFixture(b)
	sys, err := NewSystem(scripts, gen.Sources, Options{SeqLength: 6, Tau: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	input, err := ParseScript(`import pandas as pd
df = pd.read_csv("diabetes.csv")
df = df.fillna(df.median())
df = pd.get_dummies(df)
`)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Standardize(input); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadCSV(b *testing.B) {
	gen, _ := medicalFixture(b)
	csv := gen.Sources["diabetes.csv"].CSVString()
	b.SetBytes(int64(len(csv)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadCSV(strings.NewReader(csv)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCorpusGeneration(b *testing.B) {
	c, err := corpusgen.Get("Medical")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Generate(corpusgen.GenOptions{Seed: int64(i + 1), RowScale: 0.3}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchStandardizeTitanic runs the seed Titanic workload end to end with
// the execution-prefix cache on or off; the pair quantifies the tentpole
// speedup (see DESIGN.md "Execution caching" for recorded numbers).
func benchStandardizeTitanic(b *testing.B, disableCache bool) {
	c, err := corpusgen.Get("Titanic")
	if err != nil {
		b.Fatal(err)
	}
	// Enough rows that interpreter execution (not search bookkeeping)
	// dominates, as in real workloads.
	gen, err := c.Generate(corpusgen.GenOptions{Seed: 3, MinRows: 4000, NumScripts: 16})
	if err != nil {
		b.Fatal(err)
	}
	scripts := gen.ScriptsOnly()
	input := scripts[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh System per iteration so each run starts with a cold cache
		// (the cache lives for one StandardizeGrid call anyway).
		sys, err := NewSystem(scripts[1:], gen.Sources, Options{
			SeqLength:        8,
			Tau:              0.5,
			DisableExecCache: disableCache,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := sys.Standardize(input)
		if err != nil {
			b.Fatal(err)
		}
		if !disableCache && res.ExecCache.StmtsSkipped == 0 {
			b.Fatal("exec cache reported no skipped statements")
		}
	}
}

func BenchmarkStandardizeExecCacheOn(b *testing.B) { benchStandardizeTitanic(b, false) }

func BenchmarkStandardizeExecCacheOff(b *testing.B) { benchStandardizeTitanic(b, true) }

// batchBenchJobs builds the shared fixture for the batch benchmarks: a
// Titanic corpus plus a set of jobs sampled from it.
func batchBenchJobs(b *testing.B) (*corpusgen.Generated, []*Script) {
	b.Helper()
	c, err := corpusgen.Get("Titanic")
	if err != nil {
		b.Fatal(err)
	}
	gen, err := c.Generate(corpusgen.GenOptions{Seed: 3, MinRows: 1200, NumScripts: 12})
	if err != nil {
		b.Fatal(err)
	}
	return gen, gen.Sample(6, 17)
}

// BenchmarkStandardizeBatch standardizes N jobs through one System: the
// corpus is curated once and every job shares the execution-prefix cache.
// Compare against BenchmarkStandardizeSequentialBaseline, which is what the
// same N jobs cost as independent single-shot users (one NewSystem each);
// cmd/lsbench -exp batch records the same comparison in BENCH_batch.json.
func BenchmarkStandardizeBatch(b *testing.B) {
	gen, jobs := batchBenchJobs(b)
	corpus := gen.ScriptsOnly()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		before := core.CurateCalls()
		sys, err := NewSystem(corpus, gen.Sources, Options{SeqLength: 6, Tau: 0.5, BatchWorkers: 4})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.StandardizeBatch(jobs); err != nil {
			b.Fatal(err)
		}
		if got := core.CurateCalls() - before; got != 1 {
			b.Fatalf("batch of %d jobs curated %d times, want exactly once", len(jobs), got)
		}
	}
}

// BenchmarkStandardizeSequentialBaseline is the no-batching counterpart:
// every job builds its own System (re-curating the corpus) and runs alone.
func BenchmarkStandardizeSequentialBaseline(b *testing.B) {
	gen, jobs := batchBenchJobs(b)
	corpus := gen.ScriptsOnly()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, job := range jobs {
			sys, err := NewSystem(corpus, gen.Sources, Options{SeqLength: 6, Tau: 0.5})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sys.Standardize(job); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkStandardizeParallel(b *testing.B) {
	gen, scripts := medicalFixture(b)
	sys, err := NewSystem(scripts, gen.Sources, Options{SeqLength: 6, Tau: 0.5, Workers: 4})
	if err != nil {
		b.Fatal(err)
	}
	input, err := ParseScript(`import pandas as pd
df = pd.read_csv("diabetes.csv")
df = df.fillna(df.median())
df = pd.get_dummies(df)
`)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Standardize(input); err != nil {
			b.Fatal(err)
		}
	}
}
