package lucidscript_test

import (
	"fmt"
	"log"
	"strings"

	"lucidscript"
)

// Example_standardize reproduces the paper's running example (Figures
// 1a/1b) in miniature: Alex's median-imputation draft is standardized
// against a corpus that prefers mean imputation, SkinThickness outlier
// filtering and a target split.
func Example_standardize() {
	const data = `Glucose,SkinThickness,Age,Outcome
148,35,50,1
85,29,31,0
183,,32,1
89,23,21,0
137,35,33,1
116,25,30,0
78,32,26,1
115,,29,0
197,45,53,1
125,96,54,1
110,37,30,0
168,15,34,1
`
	const corpusSrc = `import pandas as pd
df = pd.read_csv("diabetes.csv")
df = df.fillna(df.mean())
df = df[df["SkinThickness"] < 80]
y = df["Outcome"]
`
	frame, err := lucidscript.ReadCSV(strings.NewReader(data))
	if err != nil {
		log.Fatal(err)
	}
	var corpus []*lucidscript.Script
	for i := 0; i < 5; i++ {
		s, err := lucidscript.ParseScript(corpusSrc)
		if err != nil {
			log.Fatal(err)
		}
		corpus = append(corpus, s)
	}
	sys, err := lucidscript.NewSystem(corpus,
		map[string]*lucidscript.Frame{"diabetes.csv": frame},
		lucidscript.Options{Measure: lucidscript.IntentJaccard, Tau: 0.5, SeqLength: 8})
	if err != nil {
		log.Fatal(err)
	}
	input, err := lucidscript.ParseScript(`import pandas as pd
df = pd.read_csv("diabetes.csv")
df = df.fillna(df.median())
`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Standardize(input)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Script.Source())
	fmt.Printf("improved: %v\n", res.ImprovementPct > 0)
	// Output:
	// import pandas as pd
	// df = pd.read_csv("diabetes.csv")
	// df = df.fillna(df.mean())
	// df = df[df["SkinThickness"] < 80]
	// y = df["Outcome"]
	// improved: true
}

// Example_lemmatize shows the canonicalization step: different variable
// names and import aliases for the same pipeline lemmatize identically.
func Example_lemmatize() {
	a, _ := lucidscript.ParseScript("import pandas\ntrain = pandas.read_csv(\"x.csv\")\ntrain = train.dropna()\n")
	b, _ := lucidscript.ParseScript("import pandas as pd\ndata = pd.read_csv(\"x.csv\")\ndata = data.dropna()\n")
	fmt.Print(lucidscript.Lemmatize(a).Source())
	fmt.Println(lucidscript.Lemmatize(a).Source() == lucidscript.Lemmatize(b).Source())
	// Output:
	// import pandas as pd
	// df = pd.read_csv("x.csv")
	// df = df.dropna()
	// true
}
