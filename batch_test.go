package lucidscript

import (
	"errors"
	"testing"

	"lucidscript/internal/gen"
)

func TestStandardizeBatchFacade(t *testing.T) {
	sys := newTestSystem(t, Options{Tau: 0.5, SeqLength: 8, BatchWorkers: 4})
	var jobs []*Script
	for _, src := range []string{
		`import pandas as pd
df = pd.read_csv("diabetes.csv")
df = df.fillna(df.median())
df = pd.get_dummies(df)
`,
		`import pandas as pd
df = pd.read_csv("diabetes.csv")
df = df.dropna()
df = pd.get_dummies(df)
`,
	} {
		s, err := ParseScript(src)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, s)
	}

	res, err := sys.StandardizeBatch(jobs)
	if err != nil {
		t.Fatalf("StandardizeBatch: %v", err)
	}
	if len(res) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(res), len(jobs))
	}
	for i, r := range res {
		seq, err := sys.Standardize(jobs[i])
		if err != nil {
			t.Fatalf("sequential job %d: %v", i, err)
		}
		if r.Script.Source() != seq.Script.Source() {
			t.Errorf("job %d batch output diverges from sequential", i)
		}
		if r.ImprovementPct != seq.ImprovementPct {
			t.Errorf("job %d improvement %.4f != sequential %.4f", i, r.ImprovementPct, seq.ImprovementPct)
		}
	}
}

func TestStandardizeBatchFacadeErrors(t *testing.T) {
	sys := newTestSystem(t, Options{Tau: 0.5, SeqLength: 6})
	good, err := ParseScript(`import pandas as pd
df = pd.read_csv("diabetes.csv")
df = df.fillna(df.median())
df = pd.get_dummies(df)
`)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []*Script{good, nil, good} // nil job panics inside the engine

	res, err := sys.StandardizeBatch(jobs)
	if err == nil {
		t.Fatal("batch with a panicking job returned nil error")
	}
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("error type = %T, want *BatchError", err)
	}
	if len(be.Errs) != len(jobs) {
		t.Fatalf("BatchError.Errs has %d entries for %d jobs", len(be.Errs), len(jobs))
	}
	if !errors.Is(err, ErrJobPanicked) {
		t.Fatalf("errors.Is(err, ErrJobPanicked) = false; err = %v", err)
	}
	if be.Errs[0] != nil || be.Errs[2] != nil {
		t.Errorf("healthy jobs carry errors: %v, %v", be.Errs[0], be.Errs[2])
	}
	if be.Errs[1] == nil || res[1] != nil {
		t.Errorf("panicked job: err=%v res=%v, want error and nil result", be.Errs[1], res[1])
	}
	for _, i := range []int{0, 2} {
		if res[i] == nil {
			t.Errorf("healthy job %d returned nil result", i)
		}
	}
	if be.Error() == "" {
		t.Error("BatchError.Error() is empty")
	}
}

// TestStandardizeBatchGeneratedStress is the generative stress test: 32
// random-but-valid scripts standardized concurrently over a shared corpus
// and session cache must come out byte-identical to 32 sequential
// standardizations. Run under -race this doubles as the data-race gate for
// the whole batch path.
func TestStandardizeBatchGeneratedStress(t *testing.T) {
	g := gen.New(1234)
	corpus := g.Scripts(10)
	sources := g.Sources(150)
	jobs := g.Scripts(32)

	opts := Options{Tau: 0.9, SeqLength: 4, BeamSize: 3, MaxRows: 80, BatchWorkers: 8}
	sys, err := NewSystem(corpus, sources, opts)
	if err != nil {
		t.Fatal(err)
	}

	res, err := sys.StandardizeBatch(jobs)
	if err != nil {
		t.Fatalf("StandardizeBatch: %v", err)
	}

	seqSys, err := NewSystem(corpus, sources, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, su := range jobs {
		seq, err := seqSys.Standardize(su)
		if err != nil {
			t.Fatalf("sequential job %d: %v", i, err)
		}
		if res[i] == nil {
			t.Fatalf("batch job %d returned nil result", i)
		}
		if got, want := res[i].Script.Source(), seq.Script.Source(); got != want {
			t.Errorf("job %d batch output diverges from sequential:\nbatch:\n%s\nsequential:\n%s",
				i, got, want)
		}
		if res[i].REBefore != seq.REBefore || res[i].REAfter != seq.REAfter {
			t.Errorf("job %d RE (%.6f -> %.6f) != sequential (%.6f -> %.6f)",
				i, res[i].REBefore, res[i].REAfter, seq.REBefore, seq.REAfter)
		}
	}
}
