package lucidscript

// Smoke tests for the runnable examples: each is executed end to end and
// its key output lines are checked. Skipped with -short (the corpora take
// a few seconds to generate at example scale).

import (
	"os/exec"
	"strings"
	"testing"
)

func runExample(t *testing.T, dir string) string {
	t.Helper()
	if testing.Short() {
		t.Skip("examples are skipped in -short mode")
	}
	out, err := exec.Command("go", "run", "./examples/"+dir).CombinedOutput()
	if err != nil {
		t.Fatalf("example %s failed: %v\n%s", dir, err, out)
	}
	return string(out)
}

func TestExampleQuickstart(t *testing.T) {
	out := runExample(t, "quickstart")
	if !strings.Contains(out, "Standardized output") || !strings.Contains(out, "improvement") {
		t.Fatalf("quickstart output:\n%s", out)
	}
	if !strings.Contains(out, "intent preserved") {
		t.Fatal("missing intent line")
	}
}

func TestExampleTitanic(t *testing.T) {
	out := runExample(t, "titanic")
	if !strings.Contains(out, "standardized output") || !strings.Contains(out, "Δ_M") {
		t.Fatalf("titanic output:\n%s", out)
	}
}

func TestExampleLeakage(t *testing.T) {
	out := runExample(t, "leakage")
	if !strings.Contains(out, "DETECTED") && !strings.Contains(out, "partially removed") {
		t.Fatalf("leakage output:\n%s", out)
	}
}

func TestExampleCrossdataset(t *testing.T) {
	out := runExample(t, "crossdataset")
	if !strings.Contains(out, "standardized with the Titanic corpus") {
		t.Fatalf("crossdataset output:\n%s", out)
	}
}

func TestExamplePareto(t *testing.T) {
	out := runExample(t, "pareto")
	if !strings.Contains(out, "trade-off") || !strings.Contains(out, "explanations") {
		t.Fatalf("pareto output:\n%s", out)
	}
}

func TestExampleFairness(t *testing.T) {
	out := runExample(t, "fairness")
	if !strings.Contains(out, "demographic-parity gap") {
		t.Fatalf("fairness output:\n%s", out)
	}
}
