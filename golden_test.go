package lucidscript

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lucidscript/internal/corpusgen"
)

var updateGolden = flag.Bool("update", false, "rewrite golden snapshot files")

// goldenCases pins three of the synthetic competitions. Seeds and scales
// are fixed, so the curated vocabulary, the beam search, and therefore the
// snapshot are bit-reproducible.
var goldenCases = []struct {
	competition string
	jobs        int
}{
	{"Titanic", 2},
	{"Medical", 2},
	{"NLP", 1},
}

// TestGoldenSnapshots locks the end-to-end behavior of the standardizer:
// for each pinned competition it standardizes a fixed batch of corpus
// scripts and compares the full textual outcome — input and output script
// text, RE before/after, improvement, and the intent value Δ_J — against
// testdata/golden. Run with -update to rewrite the snapshots after an
// intentional behavior change.
func TestGoldenSnapshots(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.competition, func(t *testing.T) {
			comp, err := corpusgen.Get(tc.competition)
			if err != nil {
				t.Fatal(err)
			}
			gen, err := comp.Generate(corpusgen.GenOptions{Seed: 7, RowScale: 0.1, NumScripts: 12})
			if err != nil {
				t.Fatal(err)
			}
			sys, err := NewSystem(gen.ScriptsOnly(), gen.Sources,
				Options{Tau: 0.8, SeqLength: 5, BeamSize: 3, MaxRows: 120, Seed: 7, BatchWorkers: 2})
			if err != nil {
				t.Fatal(err)
			}
			jobs := gen.Sample(tc.jobs, 21)
			res, err := sys.StandardizeBatch(jobs)
			if err != nil {
				t.Fatalf("StandardizeBatch: %v", err)
			}

			var b strings.Builder
			fmt.Fprintf(&b, "competition: %s\n", tc.competition)
			for i, r := range res {
				fmt.Fprintf(&b, "\n== job %d ==\ninput:\n%s", i, jobs[i].Source())
				fmt.Fprintf(&b, "output:\n%s", r.Script.Source())
				fmt.Fprintf(&b, "re: %.4f -> %.4f (improvement %.4f%%)\n", r.REBefore, r.REAfter, r.ImprovementPct)
				fmt.Fprintf(&b, "intent: %.4f\n", r.IntentValue)
				fmt.Fprintf(&b, "transformations: %d\n", len(r.Transformations))
			}
			got := b.String()

			path := filepath.Join("testdata", "golden", strings.ToLower(tc.competition)+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run go test -run TestGoldenSnapshots -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("snapshot diverges from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
			}
		})
	}
}
