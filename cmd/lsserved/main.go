// Command lsserved runs the LucidScript standardization service: a
// long-lived HTTP server that hosts one curated System per named dataset
// and standardizes submitted scripts through bounded, admission-controlled
// job queues (see internal/serve and docs/API.md).
//
// Usage:
//
//	lsserved -addr :8080 -corpus scripts_dir -data diabetes.csv \
//	         [-measure jaccard|model] [-tau 0.9] [-target Outcome] \
//	         [-queue-depth 16] [-serve-workers 4] [-job-timeout 60s]
//
// Multiple datasets are hosted with repeatable -dataset specs, each
// curated independently at startup:
//
//	lsserved -addr :8080 \
//	    -dataset 'diabetes=corpus_dir,diabetes.csv' \
//	    -dataset 'sales=sales_corpus,sales.csv,regions.csv'
//
// Endpoints: POST /v1/jobs (idempotent via the Idempotency-Key header),
// GET /v1/jobs (cursor-paginated listing), GET /v1/jobs/{id},
// DELETE /v1/jobs/{id}, GET /healthz (liveness: always 200 while the
// process serves, including boot and drain), GET /readyz (readiness:
// retryable 503 while curating at boot or draining — what lsrouter's
// prober watches), GET /metrics (Prometheus text).
// Overload returns 429 with a Retry-After header. SIGTERM/SIGINT drains
// gracefully: in-flight jobs finish (up to -drain-timeout), queued jobs
// fail with a clean shutting-down code, then the listener closes.
//
// With -data-dir the server is durable: every job is recorded in a
// write-ahead log + snapshot under the directory, and a restart against
// the same path replays the history — finished jobs keep their results
// and output hashes, queued jobs are re-enqueued, and jobs that were
// mid-run are marked interrupted for clients to resubmit (kill -9
// included; see docs/API.md).
//
// With -registry-dir each dataset's curated corpus is persisted to a
// registry under <registry-dir>/<dataset>: the first boot curates from
// the -dataset corpus directory and publishes version 1; later boots
// warm-load the registry snapshot and skip curation entirely. Together
// with -admin-token this also enables hot-swapping: after lsstd (or any
// registry writer) publishes a new version, POST
// /v1/corpus/{dataset}/reload with "Authorization: Bearer <token>" swaps
// the dataset to the newest version without a restart — in-flight jobs
// finish on the version they started with.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"lucidscript"
	"lucidscript/internal/registry"
	"lucidscript/internal/serve"
)

type stringList []string

func (s *stringList) String() string { return fmt.Sprint(*s) }

func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		corpusDir    = flag.String("corpus", "", "corpus directory for the single-dataset shorthand (with -data)")
		measure      = flag.String("measure", "jaccard", "user-intent measure: jaccard or model")
		tau          = flag.Float64("tau", 0, "intent threshold (default 0.9 jaccard / 1% model)")
		target       = flag.String("target", "", "label column (required for -measure model)")
		seq          = flag.Int("seq", 0, "max transformations (default 16)")
		beam         = flag.Int("beam", 0, "beam size (default 3)")
		auto         = flag.Bool("auto", false, "derive seq/beam from corpus statistics (Table 2)")
		seed         = flag.Int64("seed", 1, "random seed")
		execCache    = flag.String("execcache", "on", "execution-prefix cache: on or off")
		maxCells     = flag.Int("max-cells", 0, "cap rows*cols of any value a candidate materializes (0 = governor off)")
		maxSteps     = flag.Int("max-steps", 0, "cap statements per candidate execution (0 = governor off)")
		searchWork   = flag.Int("workers", 0, "beam-search workers inside each job (default 1)")
		serveWorkers = flag.Int("serve-workers", 0, "concurrent jobs per dataset (default GOMAXPROCS)")
		queueDepth   = flag.Int("queue-depth", 0, "queued jobs per dataset before 429s (default 2x serve-workers)")
		jobTimeout   = flag.Duration("job-timeout", 0, "per-job deadline (0 = none); jobs may lower it per request")
		retryAfter   = flag.Duration("retry-after", time.Second, "Retry-After hint on 429/503 responses")
		jobRetention = flag.Duration("job-retention", 15*time.Minute, "how long finished job statuses stay pollable before eviction")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight jobs before canceling them")
		dataDir      = flag.String("data-dir", "", "durable job-store directory; jobs survive restarts against the same path (empty = in-memory)")
		registryDir  = flag.String("registry-dir", "", "corpus-registry base directory; datasets persist curated state under <dir>/<name> and warm-boot from it (empty = curate every boot)")
		adminToken   = flag.String("admin-token", "", "bearer token for admin endpoints (corpus reload); empty disables them")
		snapEvery    = flag.Int("snapshot-every", 0, "WAL appends between job-store snapshots (default 512; needs -data-dir)")
		maxRows      = flag.Int("max-rows", 0, "row cap for search-time execution, full data still verifies (0 = off)")
		dataPaths    stringList
		datasetSpecs stringList
	)
	flag.Var(&dataPaths, "data", "CSV data file for the single-dataset shorthand (repeatable)")
	flag.Var(&datasetSpecs, "dataset", "hosted dataset spec: name=corpusDir,data.csv[,more.csv] (repeatable)")
	flag.Parse()

	if *corpusDir == "" && len(datasetSpecs) == 0 {
		fmt.Fprintln(os.Stderr, "usage: lsserved -addr :8080 (-corpus dir -data file.csv | -dataset 'name=dir,file.csv' ...)")
		os.Exit(2)
	}
	if *corpusDir != "" {
		if len(dataPaths) == 0 {
			fatal(errors.New("-corpus needs at least one -data file"))
		}
		name := strings.TrimSuffix(filepath.Base(dataPaths[0]), filepath.Ext(dataPaths[0]))
		datasetSpecs = append(datasetSpecs,
			fmt.Sprintf("%s=%s,%s", name, *corpusDir, strings.Join(dataPaths, ",")))
	}

	// Bind the listener before the expensive startup work (curation, WAL
	// replay) and serve the boot surface on it: GET /healthz answers 200
	// "booting", GET /readyz and the API answer retryable 503 not_ready.
	// A router's prober therefore sees a restarting replica as alive-but-
	// unready instead of dead, and flips it ready the instant the real
	// handler is swapped in below.
	var handler atomic.Value // http.Handler
	handler.Store(serve.BootHandler(*retryAfter))
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handler.Load().(http.Handler).ServeHTTP(w, r)
	})}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "lsserved: listening on %s (booting)\n", *addr)

	metrics := lucidscript.NewMetrics()
	opts := lucidscript.Options{
		SeqLength:        *seq,
		BeamSize:         *beam,
		Measure:          lucidscript.IntentMeasure(*measure),
		Tau:              *tau,
		TargetColumn:     *target,
		Auto:             *auto,
		Seed:             *seed,
		Workers:          *searchWork,
		MaxRows:          *maxRows,
		DisableExecCache: *execCache == "off",
		Timeout:          *jobTimeout,
		Metrics:          metrics,
	}
	if *maxCells > 0 || *maxSteps > 0 {
		limits := lucidscript.DefaultExecLimits()
		if *maxCells > 0 {
			limits.MaxCells = *maxCells
		}
		if *maxSteps > 0 {
			limits.MaxSteps = *maxSteps
		}
		opts.ExecLimits = limits
	}

	systems := map[string]*lucidscript.System{}
	reloaders := map[string]serve.Reloader{}
	for _, spec := range datasetSpecs {
		name, sys, reload, err := buildDataset(spec, opts, *registryDir)
		if err != nil {
			fatal(err)
		}
		if _, dup := systems[name]; dup {
			fatal(fmt.Errorf("duplicate dataset name %q", name))
		}
		systems[name] = sys
		if reload != nil {
			reloaders[name] = reload
		}
		stats := sys.Stats()
		fmt.Fprintf(os.Stderr, "lsserved: dataset %q ready: %d scripts, %d unique edges (corpus v%d)\n",
			name, stats.Scripts, stats.UniqueEdges, sys.CorpusVersion())
	}

	srv, err := serve.NewServer(systems, serve.Config{
		Workers:       *serveWorkers,
		QueueDepth:    *queueDepth,
		RetryAfter:    *retryAfter,
		JobRetention:  *jobRetention,
		DataDir:       *dataDir,
		SnapshotEvery: *snapEvery,
		AdminToken:    *adminToken,
		Reloaders:     reloaders,
		Metrics:       metrics,
	})
	if err != nil {
		fatal(err)
	}
	if *dataDir != "" {
		rec := srv.Recovery()
		fmt.Fprintf(os.Stderr, "lsserved: durable store %s: recovered %d finished, requeued %d, interrupted %d\n",
			*dataDir, rec.Terminal, rec.Requeued, rec.Interrupted)
	}

	handler.Store(srv.Handler())
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "lsserved: ready on %s (%d datasets)\n", *addr, len(systems))

	select {
	case err := <-errCh:
		fatal(err)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "lsserved: draining (in-flight jobs finish, queued jobs fail cleanly)...")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "lsserved: drain timeout hit, in-flight jobs were canceled:", err)
	}
	// The job queues are drained; now close the listener, letting any
	// final status polls complete.
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHTTP()
	if err := httpSrv.Shutdown(httpCtx); err != nil {
		fmt.Fprintln(os.Stderr, "lsserved: http shutdown:", err)
	}
	fmt.Fprintln(os.Stderr, "lsserved: bye")
}

// buildDataset parses one name=corpusDir,csv[,csv...] spec and builds its
// System. With a registry base directory the curated state persists under
// <base>/<name>: an initialized registry warm-boots (no curation), an
// empty one is created from the corpus directory and published as version
// 1. The returned reloader (nil without a registry) re-opens the registry
// at its newest published version for hot-swapping.
func buildDataset(spec string, opts lucidscript.Options, registryBase string) (string, *lucidscript.System, serve.Reloader, error) {
	name, rest, ok := strings.Cut(spec, "=")
	if !ok || name == "" {
		return "", nil, nil, fmt.Errorf("bad -dataset %q: want name=corpusDir,data.csv[,more.csv]", spec)
	}
	parts := strings.Split(rest, ",")
	if len(parts) < 2 {
		return "", nil, nil, fmt.Errorf("bad -dataset %q: want name=corpusDir,data.csv[,more.csv]", spec)
	}
	sources := map[string]*lucidscript.Frame{}
	for _, p := range parts[1:] {
		f, err := lucidscript.ReadCSVFile(p)
		if err != nil {
			return "", nil, nil, fmt.Errorf("dataset %q: loading %s: %w", name, p, err)
		}
		sources[filepath.Base(p)] = f
	}

	if registryBase == "" {
		corpus, err := loadCorpus(parts[0])
		if err != nil {
			return "", nil, nil, fmt.Errorf("dataset %q: %w", name, err)
		}
		sys, err := lucidscript.NewSystem(corpus, sources, opts)
		if err != nil {
			return "", nil, nil, fmt.Errorf("dataset %q: %w", name, err)
		}
		return name, sys, nil, nil
	}

	regDir := filepath.Join(registryBase, name)
	var reg *registry.Registry
	if registry.IsInitialized(regDir) {
		var err error
		reg, err = registry.Open(regDir)
		if err != nil {
			return "", nil, nil, fmt.Errorf("dataset %q: opening registry %s: %w", name, regDir, err)
		}
		fmt.Fprintf(os.Stderr, "lsserved: dataset %q warm-booting from registry %s (v%d)\n",
			name, regDir, reg.Version())
	} else {
		members, err := loadCorpusMembers(parts[0])
		if err != nil {
			return "", nil, nil, fmt.Errorf("dataset %q: %w", name, err)
		}
		reg, err = registry.Create(regDir, members)
		if err != nil {
			return "", nil, nil, fmt.Errorf("dataset %q: creating registry %s: %w", name, regDir, err)
		}
		fmt.Fprintf(os.Stderr, "lsserved: dataset %q curated %d scripts into registry %s (v%d)\n",
			name, reg.NumScripts(), regDir, reg.Version())
	}
	sys, err := lucidscript.NewSystemFromRegistry(reg, sources, opts)
	if err != nil {
		return "", nil, nil, fmt.Errorf("dataset %q: %w", name, err)
	}
	reload := func() (*lucidscript.System, int64, error) {
		r, err := registry.Open(regDir)
		if err != nil {
			return nil, 0, err
		}
		s, err := lucidscript.NewSystemFromRegistry(r, sources, opts)
		if err != nil {
			return nil, 0, err
		}
		return s, r.Version(), nil
	}
	return name, sys, reload, nil
}

// loadCorpusMembers reads every *.ls / *.py script in dir as a registry
// member keyed by file name, sorted for a stable curation order.
func loadCorpusMembers(dir string) ([]registry.Script, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if strings.HasSuffix(e.Name(), ".ls") || strings.HasSuffix(e.Name(), ".py") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no *.ls or *.py scripts in %s", dir)
	}
	members := make([]registry.Script, 0, len(names))
	for _, n := range names {
		b, err := os.ReadFile(filepath.Join(dir, n))
		if err != nil {
			return nil, err
		}
		members = append(members, registry.Script{ID: n, Source: string(b)})
	}
	return members, nil
}

// loadCorpus reads every *.ls / *.py script in dir, sorted by name.
func loadCorpus(dir string) ([]*lucidscript.Script, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if strings.HasSuffix(e.Name(), ".ls") || strings.HasSuffix(e.Name(), ".py") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var corpus []*lucidscript.Script
	for _, n := range names {
		b, err := os.ReadFile(filepath.Join(dir, n))
		if err != nil {
			return nil, err
		}
		sc, err := lucidscript.ParseScript(string(b))
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", n, err)
		}
		corpus = append(corpus, sc)
	}
	if len(corpus) == 0 {
		return nil, fmt.Errorf("no *.ls or *.py scripts in %s", dir)
	}
	return corpus, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lsserved:", err)
	os.Exit(1)
}
