// Command lsstd standardizes a user's data-preparation script against a
// corpus of scripts processing the same dataset, printing the standardized
// script to stdout and a change summary to stderr.
//
// Usage:
//
//	lsstd -script my_prep.ls -corpus scripts_dir -data diabetes.csv \
//	      [-measure jaccard|model] [-tau 0.9] [-target Outcome] \
//	      [-seq 16] [-beam 3] [-auto]
//
// The corpus directory is scanned for *.ls and *.py files (straight-line
// pandas-style scripts).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"lucidscript"
)

type stringList []string

func (s *stringList) String() string { return fmt.Sprint(*s) }

func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	var (
		scriptPath = flag.String("script", "", "path to the input LSL script (required)")
		corpusDir  = flag.String("corpus", "", "directory of corpus scripts (required unless -load-space)")
		saveSpace  = flag.String("save-space", "", "write the curated search space to this file")
		loadSpace  = flag.String("load-space", "", "load a search space written by -save-space instead of curating -corpus")
		measure    = flag.String("measure", "jaccard", "user-intent measure: jaccard or model")
		tau        = flag.Float64("tau", 0, "intent threshold (default 0.9 jaccard / 1% model)")
		target     = flag.String("target", "", "label column (required for -measure model)")
		seq        = flag.Int("seq", 0, "max transformations (default 16)")
		beam       = flag.Int("beam", 0, "beam size (default 3)")
		auto       = flag.Bool("auto", false, "derive seq/beam from corpus statistics (Table 2)")
		lint       = flag.Bool("lint", false, "only report out-of-the-ordinary steps, do not transform")
		lintFreq   = flag.Float64("lint-freq", 0.1, "flag steps used by fewer than this fraction of corpus scripts")
		seed       = flag.Int64("seed", 1, "random seed")
		execCache  = flag.String("execcache", "on", "execution-prefix cache: on or off (results are identical either way)")
		dataPaths  stringList
	)
	flag.Var(&dataPaths, "data", "CSV data file (repeatable)")
	flag.Parse()

	if *scriptPath == "" || (*corpusDir == "" && *loadSpace == "") || len(dataPaths) == 0 {
		fmt.Fprintln(os.Stderr, "usage: lsstd -script prep.ls (-corpus dir | -load-space file) -data file.csv")
		os.Exit(2)
	}
	if *execCache != "on" && *execCache != "off" {
		fmt.Fprintf(os.Stderr, "lsstd: -execcache must be on or off, got %q\n", *execCache)
		os.Exit(2)
	}

	srcBytes, err := os.ReadFile(*scriptPath)
	if err != nil {
		fatal(err)
	}
	input, err := lucidscript.ParseScript(string(srcBytes))
	if err != nil {
		fatal(fmt.Errorf("parsing %s: %w", *scriptPath, err))
	}

	sources := map[string]*lucidscript.Frame{}
	for _, p := range dataPaths {
		f, err := lucidscript.ReadCSVFile(p)
		if err != nil {
			fatal(fmt.Errorf("loading %s: %w", p, err))
		}
		sources[filepath.Base(p)] = f
	}

	opts := lucidscript.Options{
		SeqLength:        *seq,
		BeamSize:         *beam,
		Measure:          lucidscript.IntentMeasure(*measure),
		Tau:              *tau,
		TargetColumn:     *target,
		Auto:             *auto,
		Seed:             *seed,
		DisableExecCache: *execCache == "off",
	}
	var sys *lucidscript.System
	if *loadSpace != "" {
		fh, err := os.Open(*loadSpace)
		if err != nil {
			fatal(err)
		}
		sys, err = lucidscript.LoadSystem(fh, sources, opts)
		fh.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		corpus, err := loadCorpus(*corpusDir)
		if err != nil {
			fatal(err)
		}
		sys, err = lucidscript.NewSystem(corpus, sources, opts)
		if err != nil {
			fatal(err)
		}
	}
	if *saveSpace != "" {
		fh, err := os.Create(*saveSpace)
		if err != nil {
			fatal(err)
		}
		if err := sys.SaveSearchSpace(fh); err != nil {
			fatal(err)
		}
		fh.Close()
		fmt.Fprintf(os.Stderr, "search space written to %s\n", *saveSpace)
	}
	stats := sys.Stats()
	fmt.Fprintf(os.Stderr, "corpus: %d scripts, %d unique 1-grams, %d n-grams, %d edges\n",
		stats.Scripts, stats.UniqueUnigrams, stats.UniqueNgrams, stats.UniqueEdges)

	if *lint {
		fmt.Print(sys.AnomalyReport(input, *lintFreq))
		return
	}

	res, err := sys.Standardize(input)
	if err != nil {
		fatal(err)
	}
	fmt.Print(res.Script.Source())
	fmt.Fprintf(os.Stderr, "RE: %.3f -> %.3f (%.1f%% improvement), intent %.3f\n",
		res.REBefore, res.REAfter, res.ImprovementPct, res.IntentValue)
	for _, tr := range res.Transformations {
		fmt.Fprintln(os.Stderr, "  "+tr)
	}
	if *execCache == "on" {
		ec := res.ExecCache
		fmt.Fprintf(os.Stderr,
			"exec cache: %d hits, %d misses, %d evictions; %d statements executed, %d skipped, ~%s exec time saved\n",
			ec.Hits, ec.Misses, ec.Evictions, ec.StmtsExecuted, ec.StmtsSkipped,
			ec.EstSavedTime.Round(time.Millisecond))
	}
}

func loadCorpus(dir string) ([]*lucidscript.Script, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if strings.HasSuffix(e.Name(), ".ls") || strings.HasSuffix(e.Name(), ".py") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var corpus []*lucidscript.Script
	for _, n := range names {
		b, err := os.ReadFile(filepath.Join(dir, n))
		if err != nil {
			return nil, err
		}
		s, err := lucidscript.ParseScript(string(b))
		if err != nil {
			fmt.Fprintf(os.Stderr, "skipping %s: %v\n", n, err)
			continue
		}
		corpus = append(corpus, s)
	}
	if len(corpus) == 0 {
		return nil, fmt.Errorf("no parseable scripts in %s", dir)
	}
	return corpus, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lsstd:", err)
	os.Exit(1)
}
