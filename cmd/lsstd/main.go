// Command lsstd standardizes a user's data-preparation script against a
// corpus of scripts processing the same dataset, printing the standardized
// script to stdout and a change summary to stderr.
//
// Usage:
//
//	lsstd -script my_prep.ls -corpus scripts_dir -data diabetes.csv \
//	      [-measure jaccard|model] [-tau 0.9] [-target Outcome] \
//	      [-seq 16] [-beam 3] [-auto] \
//	      [-timeout 30s] [-trace] [-metrics-dump]
//
// Batch mode standardizes every script matching a glob concurrently over
// one shared curated corpus, printing each output under a `# === name ===`
// header:
//
//	lsstd -jobs 'prep/*.ls' -corpus scripts_dir -data diabetes.csv \
//	      [-batch-workers 8]
//
// A -timeout (or Ctrl-C) aborts the search and prints the best result
// found so far; -trace streams structured search events to stderr and
// -metrics-dump prints cumulative counters in Prometheus text format.
//
// With -registry-dir the curated corpus persists across runs: the first
// run (with -corpus) curates and publishes version 1, later runs
// warm-load the snapshot and skip curation. When -corpus accompanies an
// initialized registry, the directory is diffed against the registry and
// only the changed scripts are re-curated, publishing a new version that
// a running lsserved can hot-swap in via its reload endpoint.
//
// The corpus directory is scanned for *.ls and *.py files (straight-line
// pandas-style scripts).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"lucidscript"
	"lucidscript/internal/registry"
)

type stringList []string

func (s *stringList) String() string { return fmt.Sprint(*s) }

func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	var (
		scriptPath  = flag.String("script", "", "path to the input LSL script (required unless -jobs)")
		jobsGlob    = flag.String("jobs", "", "glob of input scripts to standardize as one concurrent batch")
		batchWork   = flag.Int("batch-workers", 0, "worker pool size for -jobs (0 = GOMAXPROCS)")
		corpusDir   = flag.String("corpus", "", "directory of corpus scripts (required unless -load-space or -registry-dir)")
		saveSpace   = flag.String("save-space", "", "write the curated search space to this file")
		loadSpace   = flag.String("load-space", "", "load a search space written by -save-space instead of curating -corpus")
		registryDir = flag.String("registry-dir", "", "corpus-registry directory: warm-load the curated state; with -corpus, diff the directory against the registry and publish a new version incrementally")
		measure     = flag.String("measure", "jaccard", "user-intent measure: jaccard or model")
		tau         = flag.Float64("tau", 0, "intent threshold (default 0.9 jaccard / 1% model)")
		target      = flag.String("target", "", "label column (required for -measure model)")
		seq         = flag.Int("seq", 0, "max transformations (default 16)")
		beam        = flag.Int("beam", 0, "beam size (default 3)")
		auto        = flag.Bool("auto", false, "derive seq/beam from corpus statistics (Table 2)")
		lint        = flag.Bool("lint", false, "only report out-of-the-ordinary steps, do not transform")
		lintFreq    = flag.Float64("lint-freq", 0.1, "flag steps used by fewer than this fraction of corpus scripts")
		seed        = flag.Int64("seed", 1, "random seed")
		execCache   = flag.String("execcache", "on", "execution-prefix cache: on or off (results are identical either way)")
		maxCells    = flag.Int("max-cells", 0, "cap rows*cols of any value a candidate materializes (0 = governor off; setting this or -max-steps enables default budgets for the rest)")
		maxSteps    = flag.Int("max-steps", 0, "cap statements per candidate execution (0 = governor off)")
		timeout     = flag.Duration("timeout", 0, "abort the search after this duration, keeping the best partial result (e.g. 30s; 0 = no limit)")
		trace       = flag.Bool("trace", false, "stream structured search events to stderr")
		metricsDump = flag.Bool("metrics-dump", false, "print search counters in Prometheus text format to stderr on exit")
		dataPaths   stringList
	)
	flag.Var(&dataPaths, "data", "CSV data file (repeatable)")
	flag.Parse()

	if (*scriptPath == "" && *jobsGlob == "") || (*corpusDir == "" && *loadSpace == "" && *registryDir == "") || len(dataPaths) == 0 {
		fmt.Fprintln(os.Stderr, "usage: lsstd (-script prep.ls | -jobs 'glob') (-corpus dir | -load-space file | -registry-dir dir) -data file.csv")
		os.Exit(2)
	}
	if *registryDir != "" && *loadSpace != "" {
		fmt.Fprintln(os.Stderr, "lsstd: -registry-dir and -load-space are mutually exclusive")
		os.Exit(2)
	}
	if *lint && *scriptPath == "" {
		fmt.Fprintln(os.Stderr, "lsstd: -lint needs -script, not -jobs")
		os.Exit(2)
	}
	if *execCache != "on" && *execCache != "off" {
		fmt.Fprintf(os.Stderr, "lsstd: -execcache must be on or off, got %q\n", *execCache)
		os.Exit(2)
	}

	var input *lucidscript.Script
	if *scriptPath != "" {
		srcBytes, err := os.ReadFile(*scriptPath)
		if err != nil {
			fatal(err)
		}
		input, err = lucidscript.ParseScript(string(srcBytes))
		if err != nil {
			fatal(fmt.Errorf("parsing %s: %w", *scriptPath, err))
		}
	}

	sources := map[string]*lucidscript.Frame{}
	for _, p := range dataPaths {
		f, err := lucidscript.ReadCSVFile(p)
		if err != nil {
			fatal(fmt.Errorf("loading %s: %w", p, err))
		}
		sources[filepath.Base(p)] = f
	}

	opts := lucidscript.Options{
		SeqLength:        *seq,
		BeamSize:         *beam,
		Measure:          lucidscript.IntentMeasure(*measure),
		Tau:              *tau,
		TargetColumn:     *target,
		Auto:             *auto,
		Seed:             *seed,
		DisableExecCache: *execCache == "off",
		Timeout:          *timeout,
		BatchWorkers:     *batchWork,
	}
	if *maxCells > 0 || *maxSteps > 0 {
		limits := lucidscript.DefaultExecLimits()
		if *maxCells > 0 {
			limits.MaxCells = *maxCells
		}
		if *maxSteps > 0 {
			limits.MaxSteps = *maxSteps
		}
		opts.ExecLimits = limits
	}
	if *trace {
		opts.Tracer = lucidscript.NewWriterTracer(os.Stderr)
	}
	var metrics *lucidscript.Metrics
	if *metricsDump {
		metrics = lucidscript.NewMetrics()
		opts.Metrics = metrics
	}
	var sys *lucidscript.System
	if *registryDir != "" {
		reg, err := syncRegistry(*registryDir, *corpusDir)
		if err != nil {
			fatal(err)
		}
		sys, err = lucidscript.NewSystemFromRegistry(reg, sources, opts)
		if err != nil {
			fatal(err)
		}
	} else if *loadSpace != "" {
		fh, err := os.Open(*loadSpace)
		if err != nil {
			fatal(err)
		}
		sys, err = lucidscript.LoadSystem(fh, sources, opts)
		fh.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		corpus, err := loadCorpus(*corpusDir)
		if err != nil {
			fatal(err)
		}
		sys, err = lucidscript.NewSystem(corpus, sources, opts)
		if err != nil {
			fatal(err)
		}
	}
	if *saveSpace != "" {
		fh, err := os.Create(*saveSpace)
		if err != nil {
			fatal(err)
		}
		if err := sys.SaveSearchSpace(fh); err != nil {
			fatal(err)
		}
		fh.Close()
		fmt.Fprintf(os.Stderr, "search space written to %s\n", *saveSpace)
	}
	stats := sys.Stats()
	fmt.Fprintf(os.Stderr, "corpus: %d scripts, %d unique 1-grams, %d n-grams, %d edges\n",
		stats.Scripts, stats.UniqueUnigrams, stats.UniqueNgrams, stats.UniqueEdges)

	if *lint {
		fmt.Print(sys.AnomalyReport(input, *lintFreq))
		return
	}

	// Ctrl-C cancels the search cleanly: the best partial result (usually
	// the unchanged input) is still printed, with a note on stderr.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *jobsGlob != "" {
		runBatch(ctx, sys, *jobsGlob, metrics)
		return
	}

	res, err := sys.StandardizeContext(ctx, input)
	if err != nil {
		if !errors.Is(err, lucidscript.ErrCanceled) && !errors.Is(err, lucidscript.ErrDeadlineExceeded) {
			dumpMetrics(metrics)
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "lsstd: search interrupted, printing best result so far:", err)
		if res == nil {
			// The deadline fired before the input even executed; pass the
			// script through unchanged.
			fmt.Print(input.Source())
			dumpMetrics(metrics)
			return
		}
	}
	fmt.Print(res.Script.Source())
	fmt.Fprintf(os.Stderr, "RE: %.3f -> %.3f (%.1f%% improvement), intent %.3f\n",
		res.REBefore, res.REAfter, res.ImprovementPct, res.IntentValue)
	// The digest of the standardized script's output table over the full
	// data; lsserved returns the same value per job (result.output_hash), so
	// a CLI run and a served run are directly comparable.
	if hash, err := sys.OutputHash(res.Script); err == nil {
		fmt.Fprintf(os.Stderr, "output hash: %s\n", hash)
	} else {
		fmt.Fprintf(os.Stderr, "output hash unavailable: %v\n", err)
	}
	for _, tr := range res.Transformations {
		fmt.Fprintln(os.Stderr, "  "+tr)
	}
	if *execCache == "on" {
		ec := res.ExecCache
		fmt.Fprintf(os.Stderr,
			"exec cache: %d hits, %d misses, %d evictions; %d statements executed, %d skipped, ~%s exec time saved\n",
			ec.Hits, ec.Misses, ec.Evictions, ec.StmtsExecuted, ec.StmtsSkipped,
			ec.EstSavedTime.Round(time.Millisecond))
	}
	reportHealth("lsstd", res.Health)
	fmt.Fprintf(os.Stderr, "time: %s total (%s search, %s verify)\n",
		res.Timings.Total.Round(time.Millisecond),
		(res.Timings.GetSteps + res.Timings.GetTopKBeams + res.Timings.CheckIfExecutes).Round(time.Millisecond),
		res.Timings.VerifyConstraints.Round(time.Millisecond))
	dumpMetrics(metrics)
}

// runBatch standardizes every script matching the glob as one concurrent
// batch over the already-curated system. Outputs are printed in glob order
// under per-file headers; a failing job is reported on stderr and its input
// (or partial result) passed through, without stopping the other jobs.
func runBatch(ctx context.Context, sys *lucidscript.System, glob string, metrics *lucidscript.Metrics) {
	paths, err := filepath.Glob(glob)
	if err != nil {
		fatal(err)
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		fatal(fmt.Errorf("no files match -jobs %q", glob))
	}
	jobs := make([]*lucidscript.Script, len(paths))
	for i, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			fatal(err)
		}
		if jobs[i], err = lucidscript.ParseScript(string(b)); err != nil {
			fatal(fmt.Errorf("parsing %s: %w", p, err))
		}
	}

	start := time.Now()
	res, err := sys.StandardizeBatchContext(ctx, jobs)
	var be *lucidscript.BatchError
	if err != nil && !errors.As(err, &be) {
		fatal(err)
	}
	failed := 0
	for i, p := range paths {
		name := filepath.Base(p)
		fmt.Printf("# === %s ===\n", name)
		if be != nil && be.Errs[i] != nil {
			failed++
			fmt.Fprintf(os.Stderr, "%s: failed: %v\n", name, be.Errs[i])
			if res[i] != nil {
				fmt.Print(res[i].Script.Source())
			} else {
				fmt.Print(jobs[i].Source())
			}
			continue
		}
		fmt.Print(res[i].Script.Source())
		fmt.Fprintf(os.Stderr, "%s: RE %.3f -> %.3f (%.1f%% improvement), intent %.3f\n",
			name, res[i].REBefore, res[i].REAfter, res[i].ImprovementPct, res[i].IntentValue)
		reportHealth(name, res[i].Health)
	}
	fmt.Fprintf(os.Stderr, "batch: %d jobs in %s, %d failed\n",
		len(jobs), time.Since(start).Round(time.Millisecond), failed)
	dumpMetrics(metrics)
	if failed > 0 {
		os.Exit(1)
	}
}

// reportHealth notes on stderr how much containment a run needed; silent
// for a fully healthy run.
func reportHealth(name string, h lucidscript.Health) {
	if !h.Degraded() {
		return
	}
	fmt.Fprintf(os.Stderr,
		"%s: degraded: %d candidates quarantined (%d panics, %d budget trips), %d corpus scripts skipped, degraded verify: %v\n",
		name, h.Total(),
		h.Check.Panicked+h.Verify.Panicked, h.Check.Exhausted+h.Verify.Exhausted,
		h.CurateSkipped, h.VerifyDegraded)
}

// dumpMetrics prints the collected counters to stderr when -metrics-dump
// is on (metrics is nil otherwise).
func dumpMetrics(m *lucidscript.Metrics) {
	if m == nil {
		return
	}
	if err := m.WritePrometheus(os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "lsstd: metrics dump:", err)
	}
}

// syncRegistry opens (or creates) the corpus registry at regDir and, when
// a corpus directory is also given, reconciles the registry against it:
// scripts new to the directory are added, scripts that vanished are
// removed, and scripts whose content changed are replaced — one
// incremental Apply + Publish instead of a from-scratch curation. With no
// corpus directory the registry is warm-loaded as-is.
func syncRegistry(regDir, corpusDir string) (*registry.Registry, error) {
	if !registry.IsInitialized(regDir) {
		if corpusDir == "" {
			return nil, fmt.Errorf("registry %s is empty; pass -corpus to seed it", regDir)
		}
		members, err := loadCorpusMembers(corpusDir)
		if err != nil {
			return nil, err
		}
		reg, err := registry.Create(regDir, members)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "registry %s: curated %d scripts, published v%d\n",
			regDir, reg.NumScripts(), reg.Version())
		return reg, nil
	}

	reg, err := registry.Open(regDir)
	if err != nil {
		return nil, err
	}
	for _, d := range reg.Diagnostics() {
		fmt.Fprintln(os.Stderr, "registry:", d)
	}
	if corpusDir == "" {
		fmt.Fprintf(os.Stderr, "registry %s: warm-loaded v%d (%d scripts)\n",
			regDir, reg.Version(), reg.NumScripts())
		return reg, nil
	}

	want, err := loadCorpusMembers(corpusDir)
	if err != nil {
		return nil, err
	}
	have, err := reg.Members()
	if err != nil {
		return nil, err
	}
	haveByID := make(map[string]registry.Script, len(have))
	for _, m := range have {
		haveByID[m.ID] = m
	}
	var add, remove []registry.Script
	for _, m := range want {
		// The registry normalizes non-positive weights to 1 on ingest;
		// mirror that so an unchanged directory diffs clean.
		wantWeight := m.Weight
		if wantWeight <= 0 {
			wantWeight = 1
		}
		prev, ok := haveByID[m.ID]
		if !ok {
			add = append(add, m)
		} else if prev.Source != m.Source || prev.Weight != wantWeight {
			remove = append(remove, prev)
			add = append(add, m)
		}
		delete(haveByID, m.ID)
	}
	// Anything still in haveByID was never matched by the directory scan.
	for _, m := range have {
		if _, unmatched := haveByID[m.ID]; unmatched {
			remove = append(remove, m)
		}
	}
	if len(add) == 0 && len(remove) == 0 {
		fmt.Fprintf(os.Stderr, "registry %s: up to date at v%d (%d scripts)\n",
			regDir, reg.Version(), reg.NumScripts())
		return reg, nil
	}
	// Replaced scripts appear in both lists; Apply validates adds against
	// the pre-remove membership, so tombstone first, then add.
	if err := reg.Apply(nil, remove); err != nil {
		return nil, err
	}
	if err := reg.Apply(add, nil); err != nil {
		return nil, err
	}
	v, err := reg.Publish()
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "registry %s: +%d -%d scripts, published v%d (%d live)\n",
		regDir, len(add), len(remove), v, reg.NumScripts())
	return reg, nil
}

// loadCorpusMembers reads every *.ls / *.py script in dir as a registry
// member keyed by file name.
func loadCorpusMembers(dir string) ([]registry.Script, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if strings.HasSuffix(e.Name(), ".ls") || strings.HasSuffix(e.Name(), ".py") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no *.ls or *.py scripts in %s", dir)
	}
	members := make([]registry.Script, 0, len(names))
	for _, n := range names {
		b, err := os.ReadFile(filepath.Join(dir, n))
		if err != nil {
			return nil, err
		}
		members = append(members, registry.Script{ID: n, Source: string(b)})
	}
	return members, nil
}

func loadCorpus(dir string) ([]*lucidscript.Script, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if strings.HasSuffix(e.Name(), ".ls") || strings.HasSuffix(e.Name(), ".py") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var corpus []*lucidscript.Script
	for _, n := range names {
		b, err := os.ReadFile(filepath.Join(dir, n))
		if err != nil {
			return nil, err
		}
		s, err := lucidscript.ParseScript(string(b))
		if err != nil {
			fmt.Fprintf(os.Stderr, "skipping %s: %v\n", n, err)
			continue
		}
		corpus = append(corpus, s)
	}
	if len(corpus) == 0 {
		return nil, fmt.Errorf("no parseable scripts in %s", dir)
	}
	return corpus, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lsstd:", err)
	os.Exit(1)
}
