// Command lsrun executes an LSL data-preparation script against one or
// more CSV files and prints the resulting table as CSV.
//
// Usage:
//
//	lsrun -script prep.ls -data diabetes.csv [-data other.csv] [-head 20]
//
// Each -data file is registered under its base name, so a script line like
// pd.read_csv("diabetes.csv") resolves to the file passed as
// -data /path/to/diabetes.csv.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"lucidscript/internal/frame"
	"lucidscript/internal/interp"
	"lucidscript/internal/script"
)

type stringList []string

func (s *stringList) String() string { return fmt.Sprint(*s) }

func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	var (
		scriptPath = flag.String("script", "", "path to the LSL script (required)")
		head       = flag.Int("head", 0, "print only the first N rows (0 = all)")
		seed       = flag.Int64("seed", 1, "seed for df.sample")
		dataPaths  stringList
	)
	flag.Var(&dataPaths, "data", "CSV data file (repeatable)")
	flag.Parse()

	if *scriptPath == "" || len(dataPaths) == 0 {
		fmt.Fprintln(os.Stderr, "usage: lsrun -script prep.ls -data file.csv [-data more.csv]")
		os.Exit(2)
	}
	srcBytes, err := os.ReadFile(*scriptPath)
	if err != nil {
		fatal(err)
	}
	s, err := script.Parse(string(srcBytes))
	if err != nil {
		fatal(err)
	}
	sources := map[string]*frame.Frame{}
	for _, p := range dataPaths {
		f, err := frame.ReadCSVFile(p)
		if err != nil {
			fatal(fmt.Errorf("loading %s: %w", p, err))
		}
		sources[filepath.Base(p)] = f
	}
	res, err := interp.Run(s, sources, interp.Options{Seed: *seed})
	if err != nil {
		fatal(err)
	}
	if res.Main == nil {
		fatal(fmt.Errorf("script produced no output dataset"))
	}
	out := res.Main
	if *head > 0 {
		out = out.Head(*head)
	}
	if err := out.WriteCSV(os.Stdout); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "[%d rows x %d cols]\n", res.Main.NumRows(), res.Main.NumCols())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lsrun:", err)
	os.Exit(1)
}
