// Command lsbench regenerates the tables and figures of the paper's
// evaluation against the synthetic competitions.
//
// Usage:
//
//	lsbench -exp table5            # one experiment
//	lsbench -exp all               # everything, in paper order
//	lsbench -list                  # list experiments
//	lsbench -exp fig6 -scripts 10 -rowscale 0.05 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"lucidscript/internal/bench"
	"lucidscript/internal/bench/serveexp"
	"lucidscript/internal/interp"
	"lucidscript/internal/obs"
)

func main() {
	// The serve and regress experiments live in their own package because
	// they depend on the facade (see bench.ServeRunner); link them into the
	// registry here.
	bench.ServeRunner = serveexp.Run
	bench.RouteRunner = serveexp.Route
	bench.RegressRunner = serveexp.Regress
	var (
		exp         = flag.String("exp", "all", "experiment id (e.g. table5, fig9) or 'all'")
		list        = flag.Bool("list", false, "list experiments and exit")
		seed        = flag.Int64("seed", 1, "random seed")
		rowScale    = flag.Float64("rowscale", 0.02, "fraction of each competition's full tuple count")
		minRows     = flag.Int("minrows", 240, "minimum rows per dataset")
		scripts     = flag.Int("scripts", 6, "input scripts per dataset (leave-one-out cap)")
		seq         = flag.Int("seq", 0, "override sequence length (0 = default 16)")
		beam        = flag.Int("beam", 0, "override beam size (0 = default 3)")
		datasets    = flag.String("datasets", "", "comma-separated dataset subset (default all six)")
		execCache   = flag.String("execcache", "on", "execution-prefix cache: on or off")
		maxCells    = flag.Int("max-cells", 0, "cap rows*cols of any value a candidate materializes (0 = governor off; setting this or -max-steps enables default budgets for the rest)")
		maxSteps    = flag.Int("max-steps", 0, "cap statements per candidate execution (0 = governor off)")
		batchWork   = flag.Int("batch-workers", 0, "worker pool size for the batch experiment (0 = GOMAXPROCS)")
		jsonPath    = flag.String("json", "", "also write machine-readable results (batch, serve, regress experiments) to this JSON file")
		batchBase   = flag.String("batch-baseline", "", "committed batch baseline for the regress experiment (e.g. BENCH_batch.json)")
		serveBase   = flag.String("serve-baseline", "", "committed serve baseline for the regress experiment (e.g. BENCH_serve.json)")
		routeBase   = flag.String("route-baseline", "", "committed route baseline for the regress experiment (e.g. BENCH_route.json)")
		curateBase  = flag.String("curate-baseline", "", "committed curate baseline for the regress experiment (e.g. BENCH_curate.json)")
		gateWarn    = flag.Float64("gate-warn", 1.5, "regress gate: warn when current/baseline wall-clock exceeds this ratio")
		gateFail    = flag.Float64("gate-fail", 2.0, "regress gate: fail when current/baseline wall-clock exceeds this ratio")
		quiet       = flag.Bool("q", false, "suppress progress output")
		trace       = flag.Bool("trace", false, "stream structured search events to stderr")
		metricsDump = flag.Bool("metrics-dump", false, "print cumulative search counters in Prometheus text format to stderr on exit")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-8s %-9s %s\n", e.ID, e.Paper, e.Description)
		}
		return
	}

	if *execCache != "on" && *execCache != "off" {
		fmt.Fprintf(os.Stderr, "lsbench: -execcache must be on or off, got %q\n", *execCache)
		os.Exit(2)
	}
	opts := bench.Options{
		Seed:               *seed,
		RowScale:           *rowScale,
		MinRows:            *minRows,
		ScriptsPerDataset:  *scripts,
		SeqLength:          *seq,
		BeamSize:           *beam,
		DisableExecCache:   *execCache == "off",
		BatchWorkers:       *batchWork,
		JSONPath:           *jsonPath,
		BatchBaselinePath:  *batchBase,
		ServeBaselinePath:  *serveBase,
		RouteBaselinePath:  *routeBase,
		CurateBaselinePath: *curateBase,
		Gate:               bench.GateConfig{WarnRatio: *gateWarn, FailRatio: *gateFail},
	}
	if *maxCells > 0 || *maxSteps > 0 {
		limits := interp.DefaultLimits()
		if *maxCells > 0 {
			limits.MaxCells = *maxCells
		}
		if *maxSteps > 0 {
			limits.MaxSteps = *maxSteps
		}
		opts.Limits = limits
	}
	if *datasets != "" {
		opts.Datasets = strings.Split(*datasets, ",")
	}
	if !*quiet {
		opts.Progress = os.Stderr
	}
	if *trace {
		opts.Tracer = obs.NewWriterTracer(os.Stderr)
	}
	var metrics *obs.Metrics
	if *metricsDump {
		metrics = obs.NewMetrics()
		opts.Metrics = metrics
	}

	var ids []string
	if *exp == "all" {
		for _, e := range bench.Experiments() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		e, err := bench.Lookup(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		start := time.Now()
		t, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("\n%s\n", t.Render())
		fmt.Printf("[%s completed in %s]\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if metrics != nil {
		if err := metrics.WritePrometheus(os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "lsbench: metrics dump:", err)
		}
	}
}
