// Command lsrouter fronts N lsserved replicas as one standardization
// service: every dataset is consistent-hashed onto exactly one replica,
// so each replica keeps a hot curated System, its SessionCache, its
// idempotency-key table, and its write-ahead log for the shards it owns
// (see internal/router and docs/API.md "Topology").
//
// Usage:
//
//	lsrouter -addr :8080 \
//	    -replica r1=http://127.0.0.1:8081 \
//	    -replica r2=http://127.0.0.1:8082 \
//	    -replica r3=http://127.0.0.1:8083 \
//	    [-probe-interval 500ms] [-rise 2] [-fall 2] \
//	    [-shed-depth 0] [-retry-after 1s]
//
// The router speaks the same v1 API as a single lsserved: POST /v1/jobs
// routes by the submission's dataset to the shard owner (idempotency
// keys pass through untouched), GET/DELETE /v1/jobs/{id} route by the
// replica prefix on the namespaced job id, and GET /v1/jobs fans out to
// every replica and merges one page in id order. Replica readiness is
// probed off GET /readyz with hysteresis; unready or draining replicas
// are ejected from the ring and their shards fail over to the surviving
// owners, with Retry-After-bearing 503s covering the detection window.
// With -shed-depth the router additionally sheds submissions (429)
// whose shard already reports that much queued work — a tier before the
// replica's own 429.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"lucidscript/internal/router"
)

type replicaList []router.Replica

func (r *replicaList) String() string { return fmt.Sprint(*r) }

func (r *replicaList) Set(v string) error {
	name, base, ok := strings.Cut(v, "=")
	if !ok || name == "" || base == "" {
		return fmt.Errorf("bad -replica %q: want name=http://host:port", v)
	}
	*r = append(*r, router.Replica{Name: name, BaseURL: base})
	return nil
}

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		probeInterval = flag.Duration("probe-interval", 500*time.Millisecond, "readiness-probe cadence per replica")
		probeTimeout  = flag.Duration("probe-timeout", 2*time.Second, "per-probe round-trip budget")
		rise          = flag.Int("rise", 2, "consecutive successful probes before a replica is admitted")
		fall          = flag.Int("fall", 2, "consecutive failed probes before a replica is ejected")
		shedDepth     = flag.Int("shed-depth", 0, "shed a shard's submissions (429) once its owner reports this queue depth (0 = off)")
		retryAfter    = flag.Duration("retry-after", time.Second, "Retry-After hint on router-originated 429/503 responses")
		replicas      replicaList
	)
	flag.Var(&replicas, "replica", "fronted replica spec: name=http://host:port (repeatable)")
	flag.Parse()

	if len(replicas) == 0 {
		fmt.Fprintln(os.Stderr, "usage: lsrouter -addr :8080 -replica r1=http://127.0.0.1:8081 [-replica ...]")
		os.Exit(2)
	}
	rt, err := router.New(router.Config{
		Replicas:      replicas,
		ProbeInterval: *probeInterval,
		ProbeTimeout:  *probeTimeout,
		Rise:          *rise,
		Fall:          *fall,
		ShedDepth:     *shedDepth,
		RetryAfter:    *retryAfter,
	})
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rt.Start(context.Background())
	defer rt.Stop()

	httpSrv := &http.Server{Addr: *addr, Handler: rt.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "lsrouter: listening on %s, fronting %d replicas\n", *addr, len(replicas))

	select {
	case err := <-errCh:
		fatal(err)
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "lsrouter: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "lsrouter: http shutdown:", err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lsrouter:", err)
	os.Exit(1)
}
