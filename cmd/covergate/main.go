// Command covergate enforces per-package statement-coverage thresholds
// from a go test -coverprofile file. It is the checked-in CI gate: CI runs
// the full test suite once with -coverpkg over the gated packages, then
//
//	go run ./cmd/covergate -profile cover.out \
//	    lucidscript/internal/core=75 \
//	    lucidscript/internal/interp=75 \
//	    lucidscript/internal/serve=75
//
// exits non-zero if any named package's statement coverage falls below its
// threshold, printing every gated package's actual number either way so
// the CI log doubles as a coverage report.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path"
	"strconv"
	"strings"
)

// pkgCover accumulates one package's statement counts.
type pkgCover struct {
	total, covered int
}

// Pct is the package's statement coverage in percent.
func (p pkgCover) Pct() float64 {
	if p.total == 0 {
		return 0
	}
	return 100 * float64(p.covered) / float64(p.total)
}

func main() {
	profile := flag.String("profile", "cover.out", "coverprofile written by go test")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: covergate -profile cover.out import/path=minPct ...")
		os.Exit(2)
	}

	thresholds := map[string]float64{}
	var order []string
	for _, arg := range flag.Args() {
		pkg, pctStr, ok := strings.Cut(arg, "=")
		if !ok {
			fatal(fmt.Errorf("bad gate %q: want import/path=minPct", arg))
		}
		pct, err := strconv.ParseFloat(pctStr, 64)
		if err != nil {
			fatal(fmt.Errorf("bad gate %q: %v", arg, err))
		}
		thresholds[pkg] = pct
		order = append(order, pkg)
	}

	covers, err := parseProfile(*profile)
	if err != nil {
		fatal(err)
	}

	failed := false
	for _, pkg := range order {
		min := thresholds[pkg]
		c, ok := covers[pkg]
		if !ok {
			fmt.Printf("covergate: %-40s no statements in profile  FAIL (want >= %.1f%%)\n", pkg, min)
			failed = true
			continue
		}
		pct := c.Pct()
		verdict := "ok"
		if pct < min {
			verdict = fmt.Sprintf("FAIL (want >= %.1f%%)", min)
			failed = true
		}
		fmt.Printf("covergate: %-40s %6.1f%% of %d statements  %s\n", pkg, pct, c.total, verdict)
	}
	if failed {
		os.Exit(1)
	}
}

// parseProfile aggregates a coverprofile's statement counts by package
// import path. Profile lines look like
//
//	lucidscript/internal/core/search.go:88.2,93.16 4 1
//
// where the trailing fields are the statement count and the hit count; a
// statement counts as covered when its hit count is non-zero. Blocks for
// the same source region appear once per test binary that loaded the file,
// so (file, region) pairs are deduplicated, keeping the max hit count.
func parseProfile(path_ string) (map[string]pkgCover, error) {
	f, err := os.Open(path_)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	type block struct {
		stmts int
		hit   bool
	}
	blocks := map[string]block{} // "file:region" → merged block
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "mode:") || line == "" {
			continue
		}
		// file.go:s.c,e.c numStmts hitCount
		head, counts, ok := cutLast(line, " ")
		if !ok {
			return nil, fmt.Errorf("malformed profile line %q", line)
		}
		region, stmtStr, ok := cutLast(head, " ")
		if !ok {
			return nil, fmt.Errorf("malformed profile line %q", line)
		}
		stmts, err := strconv.Atoi(stmtStr)
		if err != nil {
			return nil, fmt.Errorf("malformed statement count in %q", line)
		}
		hits, err := strconv.Atoi(counts)
		if err != nil {
			return nil, fmt.Errorf("malformed hit count in %q", line)
		}
		b := blocks[region]
		b.stmts = stmts
		b.hit = b.hit || hits > 0
		blocks[region] = b
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	covers := map[string]pkgCover{}
	for region, b := range blocks {
		file, _, ok := strings.Cut(region, ":")
		if !ok {
			continue
		}
		pkg := path.Dir(file)
		c := covers[pkg]
		c.total += b.stmts
		if b.hit {
			c.covered += b.stmts
		}
		covers[pkg] = c
	}
	return covers, nil
}

// cutLast splits s at the last occurrence of sep.
func cutLast(s, sep string) (before, after string, found bool) {
	i := strings.LastIndex(s, sep)
	if i < 0 {
		return s, "", false
	}
	return s[:i], s[i+len(sep):], true
}

// fatal prints and exits.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "covergate:", err)
	os.Exit(2)
}
