// Command benchgate compares a perf report produced by `lsbench -exp
// regress -json report.json` against the committed BENCH_batch.json /
// BENCH_serve.json baselines and exits non-zero on regression.
//
// Usage:
//
//	lsbench -exp regress -batch-workers 1 -json report.json
//	benchgate -report report.json
//	benchgate -report report.json -warn 1.5 -fail 2.0
//
// Wall-clock comparisons across machines are noisy, so the gate is
// two-tier: ratios above -warn are printed but tolerated, ratios above
// -fail (or any non-identical output) exit 1. CI runs it with the generous
// defaults; refresh the baselines on the reference machine when the code
// gets legitimately faster or slower.
package main

import (
	"flag"
	"fmt"
	"os"

	"lucidscript/internal/bench"
)

func main() {
	var (
		report     = flag.String("report", "", "regress report JSON (from lsbench -exp regress -json)")
		batchBase  = flag.String("batch-baseline", "BENCH_batch.json", "committed batch baseline")
		serveBase  = flag.String("serve-baseline", "BENCH_serve.json", "committed serve baseline")
		routeBase  = flag.String("route-baseline", "BENCH_route.json", "committed route baseline")
		curateBase = flag.String("curate-baseline", "BENCH_curate.json", "committed curate baseline")
		warn       = flag.Float64("warn", 1.5, "warn when current/baseline wall-clock exceeds this ratio")
		fail       = flag.Float64("fail", 2.0, "fail when current/baseline wall-clock exceeds this ratio")
	)
	flag.Parse()
	if *report == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -report is required")
		flag.Usage()
		os.Exit(2)
	}

	rep, err := bench.LoadRegressReport(*report)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	bb, err := bench.LoadBatchBaseline(*batchBase)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	sb, err := bench.LoadServeBaseline(*serveBase)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	// The route baseline is newer than the other two; a missing file is
	// tolerated (its comparisons just degrade to "no baseline record")
	// so the gate keeps working on checkouts predating BENCH_route.json.
	rb, err := bench.LoadRouteBaseline(*routeBase)
	if err != nil && !os.IsNotExist(err) {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	// Same forgiveness for the curate baseline, newer still.
	cb, err := bench.LoadCurateBaseline(*curateBase)
	if err != nil && !os.IsNotExist(err) {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}

	findings := bench.Gate(rep, bb, sb, rb, cb, bench.GateConfig{WarnRatio: *warn, FailRatio: *fail})
	fmt.Println(bench.GateTable(findings).Render())
	fails, _, line := bench.GateSummary(findings)
	fmt.Println(line)
	if fails > 0 {
		os.Exit(1)
	}
}
