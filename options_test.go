package lucidscript

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestDefaultOptionsAreResolved(t *testing.T) {
	def := DefaultOptions()
	if got := fmt.Sprintf("%+v", def.resolved()); got != fmt.Sprintf("%+v", def) {
		t.Fatalf("DefaultOptions not a fixed point of resolved():\n%s\nvs\n%+v", got, def)
	}
	if got := fmt.Sprintf("%+v", (Options{}).resolved()); got != fmt.Sprintf("%+v", def) {
		t.Fatalf("zero Options resolve to %s, want %+v", got, def)
	}
	if err := def.Validate(); err != nil {
		t.Fatalf("DefaultOptions invalid: %v", err)
	}
}

func TestTauResolution(t *testing.T) {
	cases := []struct {
		opts Options
		want float64
	}{
		{Options{}, 0.9},
		{Options{Measure: IntentRowJaccard}, 0.9},
		{Options{Measure: IntentModel, TargetColumn: "y"}, 1},
		{Options{Measure: IntentEMD}, 0.05},
		{Options{Tau: TauZero}, 0},
		{Options{Tau: 0.42}, 0.42},
	}
	for _, c := range cases {
		if got := c.opts.resolved().Tau; got != c.want {
			t.Errorf("resolved Tau of %+v = %v, want %v", c.opts, got, c.want)
		}
	}
	// A negative MaxRows disables sampling (core treats 0 as "no cap").
	if got := (Options{MaxRows: -1}).resolved().MaxRows; got != 0 {
		t.Errorf("MaxRows -1 resolved to %d, want 0", got)
	}
	if got := (Options{}).resolved().MaxRows; got != 50000 {
		t.Errorf("MaxRows 0 resolved to %d, want 50000", got)
	}
}

func TestValidateTypedErrors(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		want error
	}{
		{"unknown measure", Options{Measure: "bogus"}, ErrUnknownMeasure},
		{"model without target", Options{Measure: IntentModel}, ErrMissingTargetColumn},
		{"fairness without target", Options{Measure: IntentFairness}, ErrMissingTargetColumn},
		{"fairness without protected", Options{Measure: IntentFairness, TargetColumn: "y"}, ErrMissingProtectedColumn},
		{"negative tau", Options{Tau: -0.5}, ErrInvalidThreshold},
		{"jaccard tau above one", Options{Tau: 1.5}, ErrInvalidThreshold},
		{"negative beam", Options{BeamSize: -1}, ErrInvalidThreshold},
		{"negative timeout", Options{Timeout: -time.Second}, ErrInvalidThreshold},
		{"zero value ok", Options{}, nil},
		{"explicit zero tau ok", Options{Tau: TauZero}, nil},
		{"model tau above one ok", Options{Measure: IntentModel, TargetColumn: "y", Tau: 10}, nil},
	}
	for _, c := range cases {
		err := c.opts.Validate()
		if c.want == nil {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
}

func TestNewSystemTypedErrors(t *testing.T) {
	data, err := ReadCSV(strings.NewReader(testCSV))
	if err != nil {
		t.Fatal(err)
	}
	s, err := ParseScript(corpusScript)
	if err != nil {
		t.Fatal(err)
	}
	sources := map[string]*Frame{"diabetes.csv": data}
	if _, err := NewSystem(nil, sources, Options{}); !errors.Is(err, ErrEmptyCorpus) {
		t.Fatalf("empty corpus: %v", err)
	}
	if _, err := NewSystem([]*Script{s}, sources, Options{Measure: "bogus"}); !errors.Is(err, ErrUnknownMeasure) {
		t.Fatalf("unknown measure: %v", err)
	}
	if _, err := NewSystem([]*Script{s}, sources, Options{Measure: IntentModel}); !errors.Is(err, ErrMissingTargetColumn) {
		t.Fatalf("missing target: %v", err)
	}
	if _, err := NewSystem([]*Script{s}, sources, Options{Tau: 2}); !errors.Is(err, ErrInvalidThreshold) {
		t.Fatalf("bad tau: %v", err)
	}
}

func facadeInput(t *testing.T) *Script {
	t.Helper()
	in, err := ParseScript(`import pandas as pd
df = pd.read_csv("diabetes.csv")
df = df.fillna(df.median())
df = pd.get_dummies(df)
`)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestStandardizeContextPreCanceledFacade(t *testing.T) {
	sys := newTestSystem(t, Options{SeqLength: 6})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := sys.StandardizeContext(ctx, facadeInput(t))
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v should also match context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("pre-canceled search returned %+v", res)
	}
}

// largeTestCSV synthesizes a dataset big enough that the interpreter works
// for tens of milliseconds per candidate, so a short deadline reliably
// fires mid-search.
func largeTestCSV(rows int) string {
	var b strings.Builder
	b.WriteString("Glucose,SkinThickness,Age,Outcome\n")
	for i := 0; i < rows; i++ {
		skin := fmt.Sprintf("%d", 15+i%80)
		if i%7 == 0 {
			skin = ""
		}
		fmt.Fprintf(&b, "%d,%s,%d,%d\n", 78+i%120, skin, 21+i%40, i%2)
	}
	return b.String()
}

func TestOptionsTimeoutPartialResult(t *testing.T) {
	data, err := ReadCSV(strings.NewReader(largeTestCSV(20000)))
	if err != nil {
		t.Fatal(err)
	}
	var corpus []*Script
	for i := 0; i < 5; i++ {
		s, err := ParseScript(corpusScript)
		if err != nil {
			t.Fatal(err)
		}
		corpus = append(corpus, s)
	}
	sys, err := NewSystem(corpus, map[string]*Frame{"diabetes.csv": data},
		Options{Timeout: time.Millisecond, MaxRows: -1})
	if err != nil {
		t.Fatal(err)
	}
	input := facadeInput(t)
	start := time.Now()
	res, err := sys.Standardize(input)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v should also match context.DeadlineExceeded", err)
	}
	// Promptness: the 1ms deadline must abort the search long before it
	// would finish naturally. The bound is generous for CI noise.
	if elapsed > 2*time.Second {
		t.Fatalf("canceled search took %s", elapsed)
	}
	if res != nil {
		// A partial result falls back to the input script.
		if res.Script.Source() != input.Source() {
			t.Fatalf("partial result is not the input:\n%s", res.Script.Source())
		}
		if res.ImprovementPct != 0 {
			t.Fatalf("partial fallback claims improvement %.2f%%", res.ImprovementPct)
		}
	}
}

func TestFacadeTracerAndMetrics(t *testing.T) {
	tr := NewCollectTracer()
	m := NewMetrics()
	sys := newTestSystem(t, Options{SeqLength: 6, Tracer: tr, Metrics: m})
	res, err := sys.Standardize(facadeInput(t))
	if err != nil {
		t.Fatal(err)
	}
	events := tr.Events()
	if len(events) == 0 {
		t.Fatal("tracer saw no events")
	}
	if events[0].Kind != TraceCurateDone {
		t.Fatalf("first event = %s", events[0].Kind)
	}
	last := events[len(events)-1]
	if last.Kind != TraceSearchDone {
		t.Fatalf("last event = %s", last.Kind)
	}
	if res.Timings.Total <= 0 {
		t.Fatal("Result.Timings.Total not populated")
	}
	if last.Dur != res.Timings.Total {
		t.Fatalf("search_done dur %s != Timings.Total %s", last.Dur, res.Timings.Total)
	}
	if got := m.Value(MetricCacheHits); got != res.ExecCache.Hits {
		t.Fatalf("cache hits metric %d != result %d", got, res.ExecCache.Hits)
	}
	if got := m.Value(MetricStatementsExecuted); got != res.ExecCache.StmtsExecuted {
		t.Fatalf("statements metric %d != result %d", got, res.ExecCache.StmtsExecuted)
	}
	var prom strings.Builder
	if err := m.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), "lucidscript_searches_total 1") {
		t.Fatalf("prometheus dump missing search counter:\n%s", prom.String())
	}
}

func TestParetoFrontierContextCanceledFacade(t *testing.T) {
	sys := newTestSystem(t, Options{SeqLength: 6})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pts, err := sys.ParetoFrontierContext(ctx, facadeInput(t), []float64{0.5, 0.9})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if pts != nil {
		t.Fatalf("canceled frontier returned points: %+v", pts)
	}
}
