package lucidscript

import (
	"context"
	"errors"
	"regexp"
	"testing"
)

const inputScript = `import pandas as pd
df = pd.read_csv("diabetes.csv")
df = df[df["Age"] > 25]
y = df["Outcome"]
`

// TestJobQueueFacade exercises the serving facade end to end in-process:
// jobs submitted through a JobQueue return results identical to
// System.Standardize, the handle's lifecycle accessors work, and Close
// makes the queue refuse new work.
func TestJobQueueFacade(t *testing.T) {
	sys := newTestSystem(t, Options{Tau: 0.9, SeqLength: 3})
	su, err := ParseScript(inputScript)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sys.Standardize(su)
	if err != nil {
		t.Fatal(err)
	}

	jq := sys.NewJobQueue(2, 0)
	defer jq.Close()
	ctx := context.Background()

	job, err := jq.Submit(ctx, su)
	if err != nil {
		t.Fatal(err)
	}
	if job.ID() != 0 {
		t.Errorf("first job ID = %d, want 0", job.ID())
	}
	res, err := job.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Script.Source() != want.Script.Source() {
		t.Errorf("queued result diverges from Standardize:\nqueued:\n%s\ndirect:\n%s",
			res.Script.Source(), want.Script.Source())
	}
	select {
	case <-job.Done():
	default:
		t.Error("Done not closed after Wait returned")
	}
	if job.State() != JobDone {
		t.Errorf("state = %v, want JobDone", job.State())
	}
	if res2, err := job.Result(); err != nil || res2.Script.Source() != want.Script.Source() {
		t.Errorf("Result() = %v, %v after Wait", res2, err)
	}

	st := jq.Stats()
	if st.Submitted != 1 || st.Completed != 1 || st.Failed != 0 {
		t.Errorf("stats = %+v, want 1 submitted/completed", st)
	}
	if st.Workers != 2 || st.Capacity != 4 {
		t.Errorf("stats = %+v, want 2 workers, capacity 4 (2x workers default)", st)
	}

	jq.Close()
	if _, err := jq.Submit(ctx, su); !errors.Is(err, ErrQueueClosed) {
		t.Errorf("Submit after Close err = %v, want ErrQueueClosed", err)
	}
}

// TestJobQueueCancel pins the facade's cancellation path: a canceled job
// completes with ErrCanceled.
func TestJobQueueCancel(t *testing.T) {
	sys := newTestSystem(t, Options{Tau: 0.9, SeqLength: 3})
	su, err := ParseScript(inputScript)
	if err != nil {
		t.Fatal(err)
	}
	jq := sys.NewJobQueue(1, 2)
	defer jq.Close()

	// A pre-canceled submission context makes the outcome deterministic:
	// the job completes with ErrCanceled no matter when the worker gets it.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	job, err := jq.Submit(ctx, su)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Wait(context.Background()); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled job err = %v, want ErrCanceled", err)
	}
	job.Cancel() // canceling a finished job is a no-op
}

// TestOutputHash pins the output-table digest the CLI prints and the HTTP
// service returns: 64 hex chars, deterministic, equal for scripts with
// equal output tables, different when the output differs.
func TestOutputHash(t *testing.T) {
	sys := newTestSystem(t, Options{Tau: 0.9, SeqLength: 3})
	su, err := ParseScript(inputScript)
	if err != nil {
		t.Fatal(err)
	}
	h1, err := sys.OutputHash(su)
	if err != nil {
		t.Fatal(err)
	}
	if !regexp.MustCompile(`^[0-9a-f]{64}$`).MatchString(h1) {
		t.Fatalf("hash = %q, want 64 lowercase hex chars", h1)
	}
	h2, err := sys.OutputHash(su)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Errorf("hash not deterministic: %q != %q", h1, h2)
	}

	other, err := ParseScript(`import pandas as pd
df = pd.read_csv("diabetes.csv")
df = df[df["Age"] > 40]
`)
	if err != nil {
		t.Fatal(err)
	}
	h3, err := sys.OutputHash(other)
	if err != nil {
		t.Fatal(err)
	}
	if h3 == h1 {
		t.Error("different output tables hash equal")
	}

	if _, err := sys.OutputHash(MustParseScript(t, "import pandas as pd\nbroken = missing.read()\n")); err == nil {
		t.Error("hashing a failing script did not error")
	}
}

// MustParseScript parses or fails the test; local helper for inputs where
// parse success is not itself under test. Scripts that do not parse at all
// are skipped (the grammar is not the subject here).
func MustParseScript(t *testing.T, src string) *Script {
	t.Helper()
	s, err := ParseScript(src)
	if err != nil {
		t.Skipf("fixture script does not parse: %v", err)
	}
	return s
}
